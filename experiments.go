package perfprune

// Experiment registry: one entry per figure and table of the paper's
// evaluation (§IV). Each experiment regenerates the paper's artifact —
// heatmap grid, staircase curve, instruction table or counter
// comparison — from the simulator, never from stored numbers.
// EXPERIMENTS.md records paper-vs-measured for each.

import (
	"fmt"
	"sort"
	"strings"

	"perfprune/internal/acl"
	"perfprune/internal/autotune"
	"perfprune/internal/backend"
	"perfprune/internal/conv"
	"perfprune/internal/core"
	"perfprune/internal/device"
	"perfprune/internal/hybrid"
	"perfprune/internal/nets"
	"perfprune/internal/profiler"
	"perfprune/internal/report"
	"perfprune/internal/staircase"
	"perfprune/internal/stats"
)

// Experiment is one regenerable paper artifact.
type Experiment struct {
	// ID is the registry key, e.g. "fig14" or "table5".
	ID string
	// Title describes the artifact.
	Title string
	// Paper summarizes what the paper reports for this artifact.
	Paper string
	// Run regenerates the artifact and renders it as text.
	Run func() (string, error)
}

// mustLayer fetches a labeled layer from a network.
func mustLayer(n nets.Network, label string) nets.Layer {
	l, ok := n.Layer(label)
	if !ok {
		panic(fmt.Sprintf("experiments: layer %s missing from %s", label, n.Name))
	}
	return l
}

// heatmapFor builds a prune-distance x unique-layer heatmap: each cell
// is the cumulative best speedup (or worst slowdown) achievable within
// that prune distance, exactly the figures' aggregation. One concurrent
// engine serves every column's sweep.
func heatmapFor(n nets.Network, lib backend.Backend, dev device.Device,
	distances []int, slowdown bool, title string) (report.Heatmap, error) {
	eng := profiler.NewEngine()
	layers := n.UniqueLayers()
	h := report.Heatmap{
		Title:     title,
		Kind:      "speedup",
		ColLabels: make([]string, len(layers)),
		RowLabels: make([]string, len(distances)),
		Cells:     make([][]float64, len(distances)),
	}
	if slowdown {
		h.Kind = "slowdown"
	}
	for i, d := range distances {
		h.RowLabels[i] = fmt.Sprintf("Prune=%d", d)
		h.Cells[i] = make([]float64, len(layers))
	}
	maxD := distances[len(distances)-1]
	for j, l := range layers {
		h.ColLabels[j] = l.Label
		c0 := l.Spec.OutC
		lo := c0 - maxD
		if lo < 1 {
			lo = 1
		}
		curve, err := eng.SweepChannels(lib, dev, l.Spec, lo, c0)
		if err != nil {
			return report.Heatmap{}, err
		}
		var row []float64
		if slowdown {
			row, err = staircase.SlowdownRow(curve, c0, distances)
		} else {
			row, err = staircase.SpeedupRow(curve, c0, distances)
		}
		if err != nil {
			return report.Heatmap{}, err
		}
		for i := range distances {
			h.Cells[i][j] = row[i]
		}
	}
	return h, h.Validate()
}

// curveFor sweeps one layer and wraps it as a renderable curve.
func curveFor(lib backend.Backend, dev device.Device, spec conv.ConvSpec,
	lo, hi int, title string) (report.Curve, error) {
	pts, err := profiler.NewEngine().SweepChannels(lib, dev, spec, lo, hi)
	if err != nil {
		return report.Curve{}, err
	}
	return report.Curve{
		Title:  title,
		XLabel: "number of channels",
		YLabel: "inference time (ms)",
		Points: pts,
	}, nil
}

func renderHeatmap(h report.Heatmap, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return h.Render(), nil
}

func renderCurve(lib backend.Backend, dev device.Device, spec conv.ConvSpec,
	lo, hi int, title string, annotate func([]profiler.Point) string) (string, error) {
	c, err := curveFor(lib, dev, spec, lo, hi, title)
	if err != nil {
		return "", err
	}
	out := c.RenderASCII(72, 16)
	if annotate != nil {
		out += annotate(c.Points)
	}
	return out, nil
}

func at(pts []profiler.Point, c int) float64 {
	for _, p := range pts {
		if p.Channels == c {
			return p.Ms
		}
	}
	return 0
}

// fullDistances are the rows of Figs. 6-17; fig1Distances and
// fig19Distances match those figures' shorter row sets.
var (
	fullDistances  = profiler.PruneDistances
	fig1Distances  = []int{1, 7, 15, 31, 63}
	fig19Distances = []int{1, 3, 7, 15, 31}
)

// Experiments returns the full registry in paper order.
func Experiments() []Experiment {
	resnet := nets.ResNet50()
	vgg := nets.VGG16()
	alex := nets.AlexNet()
	l14 := mustLayer(resnet, "ResNet.L14").Spec
	l16 := mustLayer(resnet, "ResNet.L16").Spec
	l26 := mustLayer(resnet, "ResNet.L26").Spec
	l45 := mustLayer(resnet, "ResNet.L45").Spec

	return []Experiment{
		{
			ID:    "fig1",
			Title: "Max slowdown heatmap: ResNet-50, ACL GEMM, HiKey 970 (Mali G72)",
			Paper: "slowdowns up to 2x when pruning as few as 64 channels",
			Run: func() (string, error) {
				return renderHeatmap(heatmapFor(resnet, ACLGEMM(), device.HiKey970,
					fig1Distances, true,
					"Fig. 1: maximum slowdown vs unpruned, ACL GEMM on HiKey 970"))
			},
		},
		{
			ID:    "fig2",
			Title: "Staircase: ResNet-50 L26 (1024 ch), cuDNN, Jetson TX2",
			Paper: "clean staircase, inference 1-8 ms over 0-1024 channels",
			Run: func() (string, error) {
				return renderCurve(CuDNN(), device.JetsonTX2, l26, 1, 1024,
					"Fig. 2: ResNet-50 L26 under cuDNN on Jetson TX2", nil)
			},
		},
		{
			ID:    "fig3",
			Title: "Double staircase: ResNet-50 L16, ACL GEMM, Mali G72",
			Paper: "two parallel staircases, 5-30 ms over 20-128 channels",
			Run: func() (string, error) {
				return renderCurve(ACLGEMM(), device.HiKey970, l16, 20, 128,
					"Fig. 3: ResNet-50 L16 under ACL on HiKey 970", nil)
			},
		},
		{
			ID:    "fig4",
			Title: "Staircase: ResNet-50 L16, cuDNN, Jetson TX2",
			Paper: "flat above 97 channels, 1.3x drop at 96, next drop at 64",
			Run: func() (string, error) {
				return renderCurve(CuDNN(), device.JetsonTX2, l16, 20, 128,
					"Fig. 4: ResNet-50 L16 under cuDNN on Jetson TX2",
					func(pts []profiler.Point) string {
						return fmt.Sprintf("t(128)=%.2f ms, t(96)=%.2f ms (step %.2fx), t(64)=%.2f ms\n",
							at(pts, 128), at(pts, 96), at(pts, 128)/at(pts, 96), at(pts, 64))
					})
			},
		},
		{
			ID:    "fig5",
			Title: "Staircase: ResNet-50 L14 (512 ch), cuDNN, Jetson TX2",
			Paper: "more stairs, uneven gaps, 0.5-4 ms",
			Run: func() (string, error) {
				return renderCurve(CuDNN(), device.JetsonTX2, l14, 1, 512,
					"Fig. 5: ResNet-50 L14 under cuDNN on Jetson TX2", nil)
			},
		},
		{
			ID:    "fig6",
			Title: "Max speedup heatmap: ResNet-50, cuDNN, Jetson TX2",
			Paper: "all cells >= 1.0x; 3.3x max at Prune=127 (L11/L16)",
			Run: func() (string, error) {
				return renderHeatmap(heatmapFor(resnet, CuDNN(), device.JetsonTX2,
					fullDistances, false,
					"Fig. 6: maximum speedup, cuDNN on Jetson TX2"))
			},
		},
		{
			ID:    "fig7",
			Title: "Staircase: ResNet-50 L14, cuDNN, Jetson Nano",
			Paper: "same pattern as TX2 (Fig. 5), ~3.5x slower (2-14 ms)",
			Run: func() (string, error) {
				return renderCurve(CuDNN(), device.JetsonNano, l14, 1, 512,
					"Fig. 7: ResNet-50 L14 under cuDNN on Jetson Nano", nil)
			},
		},
		{
			ID:    "fig8",
			Title: "Max speedup heatmap: VGG-16, cuDNN, Jetson TX2",
			Paper: "up to 2.8x at Prune=127",
			Run: func() (string, error) {
				return renderHeatmap(heatmapFor(vgg, CuDNN(), device.JetsonTX2,
					fullDistances, false,
					"Fig. 8: maximum speedup, VGG-16 under cuDNN"))
			},
		},
		{
			ID:    "fig9",
			Title: "Max speedup heatmap: AlexNet, cuDNN, Jetson TX2",
			Paper: "modest speedups, up to 1.4x",
			Run: func() (string, error) {
				return renderHeatmap(heatmapFor(alex, CuDNN(), device.JetsonTX2,
					fullDistances, false,
					"Fig. 9: maximum speedup, AlexNet under cuDNN"))
			},
		},
		{
			ID:    "fig10",
			Title: "Max speedup heatmap: ResNet-50, ACL Direct, HiKey 970",
			Paper: "prune-by-1 slowdowns to 0.2x on 1x1 layers; up to 16.9x at Prune=127",
			Run: func() (string, error) {
				return renderHeatmap(heatmapFor(resnet, ACLDirect(), device.HiKey970,
					fullDistances, false,
					"Fig. 10: maximum speedup, ACL Direct on HiKey 970"))
			},
		},
		{
			ID:    "fig11",
			Title: "Max speedup heatmap: VGG-16, ACL Direct, HiKey 970",
			Paper: "up to 14.7x at Prune=127",
			Run: func() (string, error) {
				return renderHeatmap(heatmapFor(vgg, ACLDirect(), device.HiKey970,
					fullDistances, false,
					"Fig. 11: maximum speedup, VGG-16 under ACL Direct"))
			},
		},
		{
			ID:    "fig12",
			Title: "Three execution levels: ResNet-50 L14, ACL Direct, HiKey 970",
			Paper: "three alternating levels, up to 1.9x apart, 0-70 ms",
			Run: func() (string, error) {
				return renderCurve(ACLDirect(), device.HiKey970, l14, 1, 512,
					"Fig. 12: ResNet-50 L14 under ACL Direct on HiKey 970",
					func(pts []profiler.Point) string {
						return fmt.Sprintf("levels at C=512/510/511: %.1f / %.1f / %.1f ms (spread %.2fx)\n",
							at(pts, 512), at(pts, 510), at(pts, 511), at(pts, 511)/at(pts, 512))
					})
			},
		},
		{
			ID:    "fig13",
			Title: "Max speedup heatmap: ResNet-50, ACL GEMM, HiKey 970",
			Paper: "no slowdown near original sizes; up to 5.2x at Prune=127",
			Run: func() (string, error) {
				return renderHeatmap(heatmapFor(resnet, ACLGEMM(), device.HiKey970,
					fullDistances, false,
					"Fig. 13: maximum speedup, ACL GEMM on HiKey 970"))
			},
		},
		{
			ID:    "fig14",
			Title: "Double staircase detail: ResNet-50 L16, ACL GEMM, HiKey 970",
			Paper: "93-96 ch at 14 ms vs 92/97 at 23 ms; 76->78 gives 1.83x (20.12 vs 10.996 ms)",
			Run: func() (string, error) {
				return renderCurve(ACLGEMM(), device.HiKey970, l16, 20, 128,
					"Fig. 14: ResNet-50 L16 under ACL GEMM on HiKey 970",
					func(pts []profiler.Point) string {
						return fmt.Sprintf("t(92)=%.2f t(93)=%.2f t(96)=%.2f t(97)=%.2f ms; t(76)/t(78)=%.2fx (%.2f vs %.2f ms)\n",
							at(pts, 92), at(pts, 93), at(pts, 96), at(pts, 97),
							at(pts, 76)/at(pts, 78), at(pts, 76), at(pts, 78))
					})
			},
		},
		{
			ID:    "fig15",
			Title: "Pointwise gap: ResNet-50 L45 (2048 ch), ACL GEMM, HiKey 970",
			Paper: "t(2036)=19.69 ms vs t(2024)=7.67 ms: 2.57x within 12 channels",
			Run: func() (string, error) {
				return renderCurve(ACLGEMM(), device.HiKey970, l45, 1, 2048,
					"Fig. 15: ResNet-50 L45 under ACL GEMM on HiKey 970",
					func(pts []profiler.Point) string {
						return fmt.Sprintf("t(2036)=%.2f ms, t(2024)=%.2f ms, gap %.2fx\n",
							at(pts, 2036), at(pts, 2024), at(pts, 2036)/at(pts, 2024))
					})
			},
		},
		{
			ID:    "fig16",
			Title: "Max speedup heatmap: VGG-16, ACL GEMM, HiKey 970",
			Paper: "up to 4.2x at Prune=127",
			Run: func() (string, error) {
				return renderHeatmap(heatmapFor(vgg, ACLGEMM(), device.HiKey970,
					fullDistances, false,
					"Fig. 16: maximum speedup, VGG-16 under ACL GEMM"))
			},
		},
		{
			ID:    "fig17",
			Title: "Max speedup heatmap: AlexNet, ACL GEMM, HiKey 970",
			Paper: "up to 2.5x at Prune=127",
			Run: func() (string, error) {
				return renderHeatmap(heatmapFor(alex, ACLGEMM(), device.HiKey970,
					fullDistances, false,
					"Fig. 17: maximum speedup, AlexNet under ACL GEMM"))
			},
		},
		{
			ID:    "fig18",
			Title: "System-level counters: ACL GEMM L16 at 92/93/96/97 channels",
			Paper: "92 and 97 channels dispatch an extra job with extra register traffic and interrupts; runtimes 23/14/14/23 ms",
			Run:   fig18,
		},
		{
			ID:    "fig19",
			Title: "Max speedup heatmap: ResNet-50, TVM, HiKey 970",
			Paper: "wild spread: slowdown cells near 0.0x beside speedups up to 13.9x",
			Run: func() (string, error) {
				return renderHeatmap(heatmapFor(resnet, TVM(), device.HiKey970,
					fig19Distances, false,
					"Fig. 19: maximum speedup, TVM on HiKey 970"))
			},
		},
		{
			ID:    "fig20",
			Title: "Untuned fallback spikes: ResNet-50 L14, TVM, HiKey 970",
			Paper: "most sizes fast, untuned sizes spike ~10.5x (up to ~500 ms)",
			Run: func() (string, error) {
				return renderCurve(TVM(), device.HiKey970, l14, 1, 512,
					"Fig. 20: ResNet-50 L14 under TVM on HiKey 970",
					func(pts []profiler.Point) string {
						upper := pts[len(pts)/2:] // upper half, as in the figure
						lo, hi := upper[0].Ms, upper[0].Ms
						for _, p := range upper {
							if p.Ms < lo {
								lo = p.Ms
							}
							if p.Ms > hi {
								hi = p.Ms
							}
						}
						return fmt.Sprintf("upper-half sweep spread: %.1f to %.1f ms (%.1fx)\n", lo, hi, hi/lo)
					})
			},
		},
		{
			ID:    "table1",
			Title: "Table I: ACL kernels, L16 @ 92 channels",
			Paper: "4 kernels: im2col, reshape, gemm_mm 706,713,280 + 106,006,992",
			Run:   func() (string, error) { return kernelTable(92) },
		},
		{
			ID:    "table2",
			Title: "Table II: ACL kernels, L16 @ 93 channels",
			Paper: "3 kernels: single gemm_mm at 848,055,936",
			Run:   func() (string, error) { return kernelTable(93) },
		},
		{
			ID:    "table3",
			Title: "Table III: ACL kernels, L16 @ 96 channels",
			Paper: "3 kernels: single gemm_mm at 848,055,936",
			Run:   func() (string, error) { return kernelTable(96) },
		},
		{
			ID:    "table4",
			Title: "Table IV: ACL kernels, L16 @ 97 channels",
			Paper: "4 kernels: gemm_mm 848,055,936 + 35,335,664",
			Run:   func() (string, error) { return kernelTable(97) },
		},
		{
			ID:    "table5",
			Title: "Table V: ACL Direct work-group sizes, 90-93 channels",
			Paper: "2x1x8 / 1x1x8 / 4x1x1 / 1x1x8; odd counts ~1.2x slower; instructions +1.1%/channel",
			Run:   table5,
		},
		{
			ID:    "plan",
			Title: "Performance-aware pruning vs uninstructed pruning (the paper's §V proposal)",
			Paper: "uninstructed 12% pruning can be slower than no pruning; staircase-edge pruning never regresses",
			Run:   planExperiment,
		},
		{
			ID:    "hybrid",
			Title: "Extension: per-layer hybrid library selection (§V outlook)",
			Paper: "§V: no optimal library exists across all layers; future solutions should integrate optimizations across libraries per layer configuration",
			Run:   hybridExperiment,
		},
		{
			ID:    "autotune",
			Title: "Extension: direct-convolution work-group auto-tuning (§IV-B2 future work)",
			Paper: "§IV-B2 cites [23]: auto-tuning OpenCL work-group size gives 3.79x mean speedup; left as future work",
			Run:   autotuneExperiment,
		},
	}
}

func fig18() (string, error) {
	resnet := nets.ResNet50()
	l16 := mustLayer(resnet, "ResNet.L16").Spec
	channels := []int{92, 93, 96, 97}
	names := make([]string, len(channels))
	metrics := []string{"Control Register Reads", "Control Register Writes", "Interrupts", "Jobs", "Runtime (ms)"}
	values := make([][]float64, len(metrics))
	for i := range values {
		values[i] = make([]float64, len(channels))
	}
	var ref [5]float64
	for j, c := range channels {
		names[j] = fmt.Sprintf("%d Channels", c)
		p, err := acl.Run(device.HiKey970, l16.WithOutC(c), acl.GEMMConv)
		if err != nil {
			return "", err
		}
		cnt := p.Result.SteadyCounters()
		raw := [5]float64{
			float64(cnt.CtrlRegReads), float64(cnt.CtrlRegWrites),
			float64(cnt.Interrupts), float64(cnt.Jobs), p.Ms,
		}
		if c == 93 {
			ref = raw
		}
		for i := range metrics {
			values[i][j] = raw[i]
		}
	}
	// Normalize counter rows to the 93-channel baseline, as the figure
	// plots relative values; runtimes stay absolute.
	for i := 0; i < 4; i++ {
		for j := range channels {
			values[i][j] /= ref[i]
		}
	}
	g := report.BarGroup{
		Title:  "Fig. 18: relative system-level results, ACL GEMM L16 (93 channels = 1.0)",
		Names:  names,
		Labels: metrics,
		Values: values,
	}
	return g.Render(), nil
}

func kernelTable(channels int) (string, error) {
	resnet := nets.ResNet50()
	l16 := mustLayer(resnet, "ResNet.L16").Spec
	rows, err := acl.KernelTable(device.HiKey970, l16.WithOutC(channels), acl.GEMMConv)
	if err != nil {
		return "", err
	}
	t := report.Table{
		Title:  fmt.Sprintf("ACL execution for layer 16 of ResNet-50 with %d output channels", channels),
		Header: []string{"Kernel Name", "No Arithm. Instr.", "No Mem. Instr."},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Name, group(r.ArithInstrs), group(r.MemInstrs)})
	}
	return t.Render(), nil
}

func table5() (string, error) {
	resnet := nets.ResNet50()
	l16 := mustLayer(resnet, "ResNet.L16").Spec
	t := report.Table{
		Title:  "ACL Direct Convolution work-group sizes (GPU simulator) vs runtime",
		Header: []string{"Channels", "X", "Y", "Z", "Relative Instr.", "Time (ms)"},
	}
	var baseInstr int64
	for c := 90; c <= 93; c++ {
		p, err := acl.Run(device.HiKey970, l16.WithOutC(c), acl.DirectConv)
		if err != nil {
			return "", err
		}
		wg := acl.WorkGroupFor(c)
		instr := p.Result.Jobs[0].ArithInstrs
		if c == 90 {
			baseInstr = instr
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c),
			fmt.Sprint(wg[0]), fmt.Sprint(wg[1]), fmt.Sprint(wg[2]),
			fmt.Sprintf("%.3f", float64(instr)/float64(baseInstr)),
			fmt.Sprintf("%.4f", p.Ms),
		})
	}
	return t.Render(), nil
}

func planExperiment() (string, error) {
	var b strings.Builder
	resnet := nets.ResNet50()
	targets := []core.Target{
		{Device: device.HiKey970, Library: ACLDirect()},
		{Device: device.HiKey970, Library: ACLGEMM()},
		{Device: device.JetsonTX2, Library: CuDNN()},
	}
	for _, tg := range targets {
		np, err := core.ProfileNetwork(tg, resnet)
		if err != nil {
			return "", err
		}
		pl, err := core.NewPlanner(np)
		if err != nil {
			return "", err
		}
		unin, err := pl.Uninstructed(0.12)
		if err != nil {
			return "", err
		}
		aware, err := pl.PerformanceAware(1.5, 2.0)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%s:\n", tg)
		fmt.Fprintf(&b, "  baseline (unpruned):            %8.2f ms\n", unin.BaselineMs)
		fmt.Fprintf(&b, "  uninstructed 12%% prune:         %8.2f ms (speedup %.2fx, acc %.1f%%)\n",
			unin.LatencyMs, unin.Speedup, unin.Accuracy)
		fmt.Fprintf(&b, "  performance-aware (target 1.5x): %7.2f ms (speedup %.2fx, acc %.1f%%)\n",
			aware.LatencyMs, aware.Speedup, aware.Accuracy)
		if unin.Speedup < 1 {
			fmt.Fprintf(&b, "  -> uninstructed pruning made the network SLOWER than no pruning\n")
		}
	}
	return b.String(), nil
}

func hybridExperiment() (string, error) {
	var b strings.Builder
	resnet := nets.ResNet50()
	counts := map[string]int{}
	var gains []float64
	fmt.Fprintf(&b, "%-14s %-14s %10s %14s\n", "layer", "winner", "hybrid ms", "vs ACL-GEMM")
	for _, l := range resnet.UniqueLayers() {
		c, err := hybrid.Select(device.HiKey970, l.Spec)
		if err != nil {
			return "", err
		}
		counts[c.Backend]++
		gemmMs := c.Considered[hybrid.BackendACLGEMM]
		gains = append(gains, gemmMs/c.Ms)
		fmt.Fprintf(&b, "%-14s %-14s %10.2f %13.2fx\n", l.Label, c.Backend, c.Ms, gemmMs/c.Ms)
	}
	gm, err := stats.GeoMean(gains)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nbackend wins:")
	for _, name := range []string{hybrid.BackendACLGEMM, hybrid.BackendACLDirect, hybrid.BackendACLWinograd, hybrid.BackendTVM} {
		fmt.Fprintf(&b, " %s=%d", name, counts[name])
	}
	fmt.Fprintf(&b, "\ngeomean gain over fixed ACL-GEMM: %.2fx\n", gm)
	return b.String(), nil
}

func autotuneExperiment() (string, error) {
	var b strings.Builder
	resnet := nets.ResNet50()
	for _, d := range []int{0, 1} {
		results, gm, err := autotune.PrunedNetwork(device.HiKey970, resnet, d)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "prune distance %d: geomean tuning speedup %.2fx\n", d, gm)
		if d == 1 {
			fmt.Fprintf(&b, "%-14s %9s %9s %12s %12s %9s\n",
				"layer", "heuristic", "tuned", "heur ms", "tuned ms", "speedup")
			for _, r := range results {
				fmt.Fprintf(&b, "%-14s %dx%dx%d    %dx%dx%d %12.3f %12.3f %8.2fx\n",
					r.Spec.Name,
					r.Heuristic[0], r.Heuristic[1], r.Heuristic[2],
					r.Best[0], r.Best[1], r.Best[2],
					r.HeuristicMs, r.BestMs, r.Speedup())
			}
		}
	}
	b.WriteString("\nauto-tuning recovers the odd-channel penalty the heuristic incurs after pruning,\n")
	b.WriteString("removing most of Fig. 10's prune-by-one hazard without touching the model.\n")
	return b.String(), nil
}

// group formats an integer with comma thousands separators, as the
// paper's tables print instruction counts.
func group(v int64) string {
	s := fmt.Sprint(v)
	n := len(s)
	if n <= 3 {
		return s
	}
	var b strings.Builder
	rem := n % 3
	if rem > 0 {
		b.WriteString(s[:rem])
		if n > rem {
			b.WriteByte(',')
		}
	}
	for i := rem; i < n; i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < n {
			b.WriteByte(',')
		}
	}
	return b.String()
}

// RunExperiment regenerates one artifact by registry ID.
func RunExperiment(id string) (string, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run()
		}
	}
	ids := make([]string, 0)
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return "", fmt.Errorf("perfprune: unknown experiment %q (have: %s)", id, strings.Join(ids, ", "))
}
