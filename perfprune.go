// Package perfprune is a reproduction of "Performance Aware
// Convolutional Neural Network Channel Pruning for Embedded GPUs"
// (Radu et al., IISWC 2019). It provides:
//
//   - real convolution compute (direct and im2col+GEMM) and the §II-B
//     channel-pruning transformation on weight tensors;
//   - a full-system embedded GPU simulator with behavioral models of
//     the Arm Compute Library, cuDNN and TVM, calibrated to the paper's
//     measurements on the HiKey 970, Odroid XU4, Jetson TX2 and Jetson
//     Nano (the hardware substitute — see DESIGN.md);
//   - the profiling + staircase-analysis + planning loop the paper
//     proposes: profile a layer's latency across channel counts, find
//     the staircase right edges, and prune to those edges under an
//     accuracy budget;
//   - an experiment registry that regenerates every figure and table of
//     the paper's evaluation (see EXPERIMENTS.md).
//
// The facade below re-exports the main types so downstream users rarely
// need to import the internal packages directly.
package perfprune

import (
	"context"
	"fmt"

	"perfprune/internal/acl"
	"perfprune/internal/autotune"
	"perfprune/internal/backend"
	"perfprune/internal/conv"
	"perfprune/internal/core"
	"perfprune/internal/device"
	"perfprune/internal/hybrid"
	"perfprune/internal/nets"
	"perfprune/internal/pareto"
	"perfprune/internal/probe"
	"perfprune/internal/profiler"
	"perfprune/internal/prune"
	"perfprune/internal/service"
	"perfprune/internal/staircase"
)

// ConvSpec describes one convolutional layer (see internal/conv).
type ConvSpec = conv.ConvSpec

// Device is one embedded board (see internal/device).
type Device = device.Device

// Backend is a measurable convolution backend (see internal/backend):
// a simulated library model, real host compute, or an extension such as
// the hybrid dispatcher.
type Backend = backend.Backend

// Library is the historical name for Backend, kept so existing callers
// and examples stay source-compatible.
type Library = backend.Backend

// Measurement is one profiled layer execution.
type Measurement = backend.Measurement

// Point is a (channels, latency) sample.
type Point = profiler.Point

// Network is an inventory of convolutional layers.
type Network = nets.Network

// Layer is one network layer with its paper label.
type Layer = nets.Layer

// Target is a (device, library) runtime environment.
type Target = core.Target

// Plan maps layer labels to kept channel counts.
type Plan = prune.Plan

// PlanResult is an evaluated pruning plan.
type PlanResult = core.PlanResult

// Analysis is a staircase analysis of a latency curve.
type Analysis = staircase.Analysis

// The paper's four evaluation boards.
var (
	HiKey970   = device.HiKey970
	OdroidXU4  = device.OdroidXU4
	JetsonTX2  = device.JetsonTX2
	JetsonNano = device.JetsonNano
)

// Devices returns all four boards.
func Devices() []Device { return device.All() }

// ACLGEMM returns the Arm Compute Library GEMM-method backend.
func ACLGEMM() Library { return backend.ACL(acl.GEMMConv) }

// ACLDirect returns the Arm Compute Library direct-convolution backend.
func ACLDirect() Library { return backend.ACL(acl.DirectConv) }

// CuDNN returns the cuDNN backend (Jetson boards).
func CuDNN() Library { return backend.CuDNN() }

// TVM returns the TVM OpenCL backend (Mali boards).
func TVM() Library { return backend.TVM() }

// Libraries returns the paper's four library configurations.
func Libraries() []Library { return backend.Simulated() }

// Hybrid returns the per-layer fastest-backend dispatcher (§V outlook).
func Hybrid() Backend { return hybrid.Library() }

// Autotuned returns the work-group auto-tuned direct backend (§IV-B2
// future work).
func Autotuned() Backend { return autotune.Backend() }

// LookupBackend resolves a backend by registry key, e.g. "acl-gemm",
// "cudnn", "tvm", "real-winograd", "hybrid" or "acl-direct-tuned".
func LookupBackend(key string) (Backend, error) { return backend.Lookup(key) }

// BackendNames returns every registered backend key, sorted.
func BackendNames() []string { return backend.Names() }

// ResNet50, VGG16 and AlexNet return the paper's three networks.
// ResNet-50 carries its residual coupling groups: the bottleneck
// expansions and projection of each stage must share a pruned width.
func ResNet50() Network { return nets.ResNet50() }

// VGG16 returns the VGG-16 inventory.
func VGG16() Network { return nets.VGG16() }

// AlexNet returns the AlexNet inventory.
func AlexNet() Network { return nets.AlexNet() }

// MobileNetV1 returns the depthwise-separable MobileNetV1 inventory
// (stem + 13 blocks), with the depthwise-producer coupling groups.
func MobileNetV1() Network { return nets.MobileNetV1() }

// Networks returns every built-in network inventory.
func Networks() []Network { return nets.All() }

// NetworkByName resolves a network case-insensitively, e.g.
// "mobilenet-v1" or "VGG-16".
func NetworkByName(name string) (Network, error) { return nets.ByName(name) }

// PruneGroup is a coupling constraint: every member layer must keep
// one shared channel count (residual chains, depthwise-producer
// pairs). Group-aware planners move members together; see
// Network.Groups and CheckGroups.
type PruneGroup = nets.Group

// CheckGroups verifies that a plan satisfies the coupling groups.
func CheckGroups(n Network, groups []PruneGroup, p Plan) error {
	return prune.CheckGroups(n, groups, p)
}

// Engine is the concurrent, cached sweep engine (see internal/profiler).
type Engine = profiler.Engine

// NewEngine returns a sweep engine with a fresh measurement cache and a
// GOMAXPROCS-bounded worker pool.
func NewEngine() *Engine { return profiler.NewEngine() }

// Sweep measures a layer's latency at every output-channel count in
// [lo, hi] on the target (median of 10 runs per configuration, as in
// the paper). The sweep fans out over a concurrent cached engine; its
// points are identical to the serial reference path's.
func Sweep(tg Target, spec ConvSpec, lo, hi int) ([]Point, error) {
	return profiler.NewEngine().SweepChannels(tg.Library, tg.Device, spec, lo, hi)
}

// SweepContext is Sweep with cancellation: when ctx is done the sweep
// stops claiming configurations and returns ctx.Err().
func SweepContext(ctx context.Context, tg Target, spec ConvSpec, lo, hi int) ([]Point, error) {
	return profiler.NewEngine().SweepChannelsContext(ctx, tg.Library, tg.Device, spec, lo, hi)
}

// Analyze detects the latency staircase and its right-edge optimal
// points in a sweep curve.
func Analyze(curve []Point) (Analysis, error) {
	return staircase.Analyze(curve)
}

// ProbeResult is an adaptively discovered staircase: the analysis, the
// reconstructed dense curve, the sparse measured points, and the
// probe-count audit (see internal/probe).
type ProbeResult = probe.Result

// ProbeStats is the probe-count audit of one probe run.
type ProbeStats = probe.Stats

// ProbeOptions tunes adaptive probing (plateau tolerance, verification
// stride, fallback policy).
type ProbeOptions = probe.Options

// ProbeStaircase discovers a layer's staircase adaptively: instead of
// sweeping every channel count in [lo, hi], it measures the endpoints
// and bisects every interval whose endpoint latencies differ,
// bracketing each stair edge in O(stairs · log C) measurements. On
// monotone curves the analysis is byte-identical to Analyze over a
// full Sweep; curves that fail monotonicity verification transparently
// fall back to the full sweep (the audit says so), so the stairs are
// exact either way.
func ProbeStaircase(tg Target, spec ConvSpec, lo, hi int) (ProbeResult, error) {
	return profiler.NewEngine().ProbeStaircase(tg.Library, tg.Device, spec, lo, hi, probe.Options{})
}

// ProbeStaircaseContext is ProbeStaircase through a caller-provided
// engine (shared measurement cache) with cancellation and options.
func ProbeStaircaseContext(ctx context.Context, eng *Engine, tg Target, spec ConvSpec, lo, hi int, opts ProbeOptions) (ProbeResult, error) {
	return eng.ProbeStaircaseContext(ctx, tg.Library, tg.Device, spec, lo, hi, opts)
}

// ProbeUsage aggregates the probe audit across a probed network
// profile.
type ProbeUsage = core.ProbeUsage

// ProfileNetworkProbe profiles every layer of a network with the
// adaptive staircase prober instead of exhaustive sweeps. The profiles
// (and every plan or frontier built from them) are identical to
// ProfileNetworkContext's; the returned usage reports the measurement
// bill — on monotone curves a small fraction of the sweep grid.
func ProfileNetworkProbe(ctx context.Context, eng *Engine, tg Target, n Network) (*core.NetworkProfile, ProbeUsage, error) {
	return core.ProfileNetworkProbeContext(ctx, eng, tg, n)
}

// ProfileNetwork sweeps every layer of a network on the target.
func ProfileNetwork(tg Target, n Network) (*core.NetworkProfile, error) {
	return core.ProfileNetwork(tg, n)
}

// ProfileNetworkContext profiles through a caller-provided engine so
// repeated profiles share one measurement cache, and aborts when ctx
// is done.
func ProfileNetworkContext(ctx context.Context, eng *Engine, tg Target, n Network) (*core.NetworkProfile, error) {
	return core.ProfileNetworkContext(ctx, eng, tg, n)
}

// NewPlanner builds the performance-aware pruning planner from a
// network profile.
func NewPlanner(np *core.NetworkProfile) (*core.Planner, error) {
	return core.NewPlanner(np)
}

// Frontier is the latency–accuracy Pareto frontier of one (network,
// target) pair: every non-dominated trade between inference time and
// modeled accuracy over the staircase right edges (see internal/pareto).
type Frontier = pareto.Frontier

// FrontierPoint is one evaluated plan on a frontier.
type FrontierPoint = pareto.Point

// FleetTarget pairs a profiled network with its fleet weight.
type FleetTarget = pareto.FleetTarget

// FleetPlan is one shared plan scored across a device fleet.
type FleetPlan = pareto.FleetPlan

// FleetObjective selects the fleet aggregation (worst-case latency or
// weighted sum).
type FleetObjective = pareto.Objective

// Fleet objectives.
const (
	WorstCase   = pareto.WorstCase
	WeightedSum = pareto.WeightedSum
)

// FleetObjectiveByName parses a fleet objective wire name
// ("worst_case", "weighted_sum"); empty means WorstCase.
func FleetObjectiveByName(name string) (FleetObjective, error) {
	return pareto.ObjectiveByName(name)
}

// ComputeFrontier computes the planner's full latency–accuracy Pareto
// frontier; query it with LatencyBudget (best accuracy under a
// deadline) and AccuracyBudget (fastest plan within a drop cap).
func ComputeFrontier(pl *core.Planner) (*Frontier, error) {
	return pareto.Compute(pl, pareto.Options{})
}

// PlanFleet finds one shared pruning plan for a fleet of targets all
// profiled on the same network, within the accuracy budget. The
// accuracy model is the one NewPlanner would build for the network, so
// fleet plans and single-target plans score identically. Profile each
// target with ProfileNetworkContext on a shared Engine so the
// measurement cache is reused.
func PlanFleet(targets []FleetTarget, maxAccuracyDrop float64, obj FleetObjective) (*FleetPlan, error) {
	if len(targets) == 0 || targets[0].Profile == nil {
		return nil, fmt.Errorf("perfprune: fleet needs at least one profiled target")
	}
	pl, err := core.NewPlanner(targets[0].Profile)
	if err != nil {
		return nil, err
	}
	return pareto.PlanFleet(targets, pl.Acc, maxAccuracyDrop, obj, pareto.Options{})
}

// CacheStats is a snapshot of a measurement cache's hit/miss counters.
type CacheStats = backend.Stats

// Service is the pruning-as-a-service HTTP daemon (see
// internal/service and cmd/perfpruned): sweep, staircase and plan
// endpoints over one process-wide coalescing measurement cache.
type Service = service.Server

// ServiceConfig configures a Service: per-request worker bound, median
// protocol runs, and an optional backend allowlist.
type ServiceConfig = service.Config

// NewService builds the HTTP planning service; mount its Handler on an
// http.Server (cmd/perfpruned does exactly that).
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }
