package perfprune

// Experiment-level regression tests: every registry entry must run, and
// the headline claims of the paper's evaluation must hold in the
// regenerated artifacts. EXPERIMENTS.md quotes the same checks.

import (
	"strings"
	"testing"

	"perfprune/internal/device"
	"perfprune/internal/nets"
	"perfprune/internal/profiler"
	"perfprune/internal/report"
	"perfprune/internal/staircase"
)

func TestRegistryCompleteAndRunnable(t *testing.T) {
	exps := Experiments()
	// 20 figures + 5 tables + the §V planner + 2 extension experiments.
	if len(exps) != 28 {
		t.Fatalf("%d experiments registered, want 28", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"fig1", "fig14", "fig18", "fig20", "table1", "table5", "plan"} {
		if !seen[id] {
			t.Errorf("registry missing %s", id)
		}
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	out, err := RunExperiment("table2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "848,055,936") {
		t.Errorf("table2 output missing the paper's gemm_mm count:\n%s", out)
	}
	if _, err := RunExperiment("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func mustHeatmap(t *testing.T, n nets.Network, lib profiler.Library, dev device.Device,
	distances []int, slowdown bool) report.Heatmap {
	t.Helper()
	h, err := heatmapFor(n, lib, dev, distances, slowdown, "t")
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestFig1Claims: uninstructed pruning on ACL GEMM can slow layers down
// (cells well above 1.0x), worst case approaching 2x.
func TestFig1Claims(t *testing.T) {
	h := mustHeatmap(t, nets.ResNet50(), ACLGEMM(), device.HiKey970, fig1Distances, true)
	if max := h.MaxCell(); max < 1.4 || max > 2.2 {
		t.Errorf("max slowdown %.2fx, paper reports up to ~1.9x", max)
	}
	// Rows are cumulative: monotone non-decreasing down each column.
	for j := range h.ColLabels {
		for i := 1; i < len(h.Cells); i++ {
			if h.Cells[i][j] < h.Cells[i-1][j]-1e-9 {
				t.Fatalf("column %s not monotone", h.ColLabels[j])
			}
		}
	}
}

// TestFig6Claims: cuDNN never slows down from pruning and tops out
// around 3.3x at Prune=127.
func TestFig6Claims(t *testing.T) {
	h := mustHeatmap(t, nets.ResNet50(), CuDNN(), device.JetsonTX2, fullDistances, false)
	if min := h.MinCell(); min < 1.0-1e-9 {
		t.Errorf("cuDNN heatmap has a slowdown cell (%.2fx); Fig. 6 has none", min)
	}
	if max := h.MaxCell(); max < 2.7 || max > 3.8 {
		t.Errorf("max speedup %.2fx, paper reports 3.3x", max)
	}
	// Shape: the 128-channel stage-2 layers (L11/L12/L15/L16) peak; the
	// 2048-channel expansions (L45/L46) stay near 1.0x.
	lastRow := h.Cells[len(h.Cells)-1]
	byLabel := map[string]float64{}
	for j, l := range h.ColLabels {
		byLabel[l] = lastRow[j]
	}
	if byLabel["ResNet.L16"] < 2.5 {
		t.Errorf("L16 Prune=127 = %.2fx, paper reports 3.3x", byLabel["ResNet.L16"])
	}
	if byLabel["ResNet.L45"] > 1.2 {
		t.Errorf("L45 Prune=127 = %.2fx, paper reports ~1.0x", byLabel["ResNet.L45"])
	}
}

// TestFig10Claims: ACL direct pruning by one channel *hurts* 1x1 layers
// (~0.2x) while deep pruning reaches >10x.
func TestFig10Claims(t *testing.T) {
	h := mustHeatmap(t, nets.ResNet50(), ACLDirect(), device.HiKey970, fullDistances, false)
	first := h.Cells[0]
	worst := 10.0
	for _, v := range first {
		if v < worst {
			worst = v
		}
	}
	if worst > 0.35 {
		t.Errorf("Prune=1 best-case slowdown %.2fx, paper reports cells at 0.2x", worst)
	}
	if max := h.MaxCell(); max < 10 || max > 25 {
		t.Errorf("max speedup %.1fx, paper reports 16.9x", max)
	}
}

// TestFig13Claims: the GEMM path has no slowdown at distance 1 and
// moderate maxima, unlike the direct path.
func TestFig13Claims(t *testing.T) {
	h := mustHeatmap(t, nets.ResNet50(), ACLGEMM(), device.HiKey970, fullDistances, false)
	for _, v := range h.Cells[0] {
		if v < 0.95 {
			t.Errorf("Prune=1 cell %.2fx: paper reports no slowdown in the vicinity of original sizes", v)
		}
	}
	if max := h.MaxCell(); max < 3 || max > 6 {
		t.Errorf("max speedup %.1fx, paper reports 5.2x", max)
	}
}

// TestFig19Claims: TVM shows both near-zero cells (untuned fallback at
// small prune distances) and speedups above 10x.
func TestFig19Claims(t *testing.T) {
	h := mustHeatmap(t, nets.ResNet50(), TVM(), device.HiKey970, fig19Distances, false)
	if min := h.MinCell(); min > 0.25 {
		t.Errorf("min cell %.2fx, paper's Fig. 19 shows 0.0x cells", min)
	}
	if max := h.MaxCell(); max < 8 || max > 30 {
		t.Errorf("max cell %.1fx, paper reports 13.9x", max)
	}
}

// TestLibraryComparisonClaim reproduces §V: "no optimal library exists
// to outperform across all neural network layers" — on the Mali boards
// each of ACL-GEMM and TVM wins on some layer.
func TestLibraryComparisonClaim(t *testing.T) {
	aclWins, tvmWins := 0, 0
	for _, l := range nets.ResNet50().UniqueLayers() {
		a, err := profiler.MeasureMedian(ACLGEMM(), device.HiKey970, l.Spec, 10)
		if err != nil {
			t.Fatal(err)
		}
		v, err := profiler.MeasureMedian(TVM(), device.HiKey970, l.Spec, 10)
		if err != nil {
			t.Fatal(err)
		}
		if a.Ms < v.Ms {
			aclWins++
		} else {
			tvmWins++
		}
	}
	if aclWins == 0 || tvmWins == 0 {
		t.Errorf("one library dominates (ACL wins %d, TVM wins %d); §V says neither dominates", aclWins, tvmWins)
	}
}

// TestFig18Output: the counter comparison shows the 92/97-channel runs
// dispatching 1.5x the jobs and interrupts of the 93/96 runs.
func TestFig18Output(t *testing.T) {
	out, err := RunExperiment("fig18")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Jobs", "Interrupts", "1.500", "1.000", "Runtime"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig18 output missing %q:\n%s", want, out)
		}
	}
}

// TestPlanExperimentOutput: the §V experiment must demonstrate the
// uninstructed slowdown on at least one OpenCL target.
func TestPlanExperimentOutput(t *testing.T) {
	out, err := RunExperiment("plan")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SLOWER") {
		t.Errorf("plan experiment did not exhibit the uninstructed-pruning slowdown:\n%s", out)
	}
	if !strings.Contains(out, "performance-aware") {
		t.Errorf("plan experiment missing the performance-aware result:\n%s", out)
	}
}

// TestAllExperimentsRun executes every registry entry end to end.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

// TestExperimentsDeterministic: re-running an experiment produces
// byte-identical output (no wall clock, no RNG).
func TestExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"fig14", "fig19", "table1", "table5"} {
		a, err := RunExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s output not deterministic", id)
		}
	}
}

// TestSpeedupRowsUseStaircaseMath cross-checks one heatmap cell against
// a hand computation: L16 cuDNN at Prune=63 must equal t(128)/t(65..128
// minimum), which is the 96-edge value.
func TestSpeedupRowsUseStaircaseMath(t *testing.T) {
	l16, _ := nets.ResNet50().Layer("ResNet.L16")
	curve, err := profiler.SweepChannels(CuDNN(), device.JetsonTX2, l16.Spec, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	row, err := staircase.SpeedupRow(curve, 128, []int{63})
	if err != nil {
		t.Fatal(err)
	}
	t128 := curve[127].Ms
	best := t128
	for _, p := range curve[64:] { // channels 65..128
		if p.Ms < best {
			best = p.Ms
		}
	}
	want := t128 / best
	if diff := row[0] - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("heatmap cell %.4f != hand computation %.4f", row[0], want)
	}
}

// TestHybridExperimentOutput: the §V extension must show multiple
// backends winning layers and a net gain over a fixed library.
func TestHybridExperimentOutput(t *testing.T) {
	out, err := RunExperiment("hybrid")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ACL-Winograd", "TVM", "geomean gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("hybrid output missing %q:\n%s", want, out)
		}
	}
}

// TestAutotuneExperimentOutput: the §IV-B2 future-work extension must
// show the tuner leaving aligned networks alone and recovering the
// pruned networks' penalty.
func TestAutotuneExperimentOutput(t *testing.T) {
	out, err := RunExperiment("autotune")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"prune distance 0", "prune distance 1", "4x1x1"} {
		if !strings.Contains(out, want) {
			t.Errorf("autotune output missing %q:\n%s", want, out)
		}
	}
}
