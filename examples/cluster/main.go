// Multi-replica profile sharing: three in-process perfpruned replicas
// run as one fleet. Replica A pays the measurement bill for an AlexNet
// plan; replica B gossip-pulls A's snapshot and serves the identical
// plan without a single measurement; replica C, with ownership hashing
// armed, forwards a cold configuration to its ring owner — and when
// that owner is killed, falls back to measuring locally, because the
// ring is a de-duplication optimization, never an availability
// dependency. The same topology runs across machines with
// `perfpruned -peers` (see README, "Multi-replica profile sharing").
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"perfprune/internal/backend"
	"perfprune/internal/cluster"
	"perfprune/internal/conv"
	"perfprune/internal/device"
	"perfprune/internal/service"
)

const planBody = `{"backend": "acl-gemm", "device": "HiKey 970", "network": "AlexNet"}`

type replica struct {
	name string
	ts   *httptest.Server
	srv  *service.Server
	node *cluster.Node
}

func main() {
	// Boot three replicas, fully meshed. Only C arms ownership
	// forwarding so the demo's phases stay independent.
	reps := make([]*replica, 3)
	for i, name := range []string{"A", "B", "C"} {
		srv, err := service.New(service.Config{Backends: []string{"acl-gemm"}})
		if err != nil {
			log.Fatal(err)
		}
		reps[i] = &replica{name: name, srv: srv, ts: httptest.NewServer(srv.Handler())}
	}
	for i, r := range reps {
		var peers []string
		for j, p := range reps {
			if j != i {
				peers = append(peers, p.ts.URL)
			}
		}
		r.node = cluster.New(cluster.Config{
			Self:      r.ts.URL,
			Peers:     peers,
			Cache:     r.srv.Cache(),
			Ownership: r.name == "C",
		})
		r.srv.SetCluster(r.node)
		if r.name == "C" {
			r.node.InstallHook()
		}
	}
	a, b, c := reps[0], reps[1], reps[2]

	// Phase 1: A measures the full AlexNet grid.
	fmt.Println("== A plans AlexNet (cold: pays every measurement) ==")
	mustPlan(a)
	fmt.Printf("A cache: %d entries\n\n", a.srv.Cache().Stats().Entries)

	// Phase 2: B anti-entropy pulls and plans measurement-free. In a
	// deployed fleet the Run loop does this on a jittered interval;
	// the demo pulls once, explicitly.
	fmt.Println("== B gossip-pulls A's snapshot, then plans ==")
	b.node.PullAll(context.Background())
	st := b.node.Stats()
	fmt.Printf("B imported %d entries (%d pulls, %d errors)\n", st.EntriesImported, st.Pulls, st.PullErrors)
	mustPlan(b)
	cs := b.srv.CacheStats()
	fmt.Printf("B plan served with %d cache misses (warmed: %d)\n\n", cs.Misses, cs.Warmed)

	// Phase 3: C forwards a cold configuration to its ring owner.
	lib, err := backend.Lookup("acl-gemm")
	if err != nil {
		log.Fatal(err)
	}
	spec := specOwnedBy(c.node, lib.Name(), a.ts.URL, 0)
	fmt.Println("== C measures a cold configuration owned by A ==")
	if _, err := c.srv.Cache().Measure(lib, device.HiKey970, spec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C forward hits: %d (the sweep ran on A)\n\n", c.node.Stats().ForwardHits)

	// Phase 4: kill A; the next A-owned key falls back locally.
	fmt.Println("== owner A dies; C falls back to local measurement ==")
	a.ts.Close()
	spec2 := specOwnedBy(c.node, lib.Name(), a.ts.URL, 1000)
	if _, err := c.srv.Cache().Measure(lib, device.HiKey970, spec2); err != nil {
		log.Fatal(err)
	}
	st = c.node.Stats()
	fmt.Printf("C forward fallbacks: %d, healthy peers: %d (A dropped off the ring)\n",
		st.ForwardFallbacks, st.PeersHealthy)

	b.ts.Close()
	c.ts.Close()
}

// mustPlan posts the AlexNet plan to r and discards the body.
func mustPlan(r *replica) {
	resp, err := http.Post(r.ts.URL+"/v1/plan", "application/json", strings.NewReader(planBody))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("plan on %s: %s", r.name, resp.Status)
	}
}

// specOwnedBy scans small valid configurations until one hashes to the
// wanted owner on n's ring.
// seed offsets the scan so successive calls find distinct specs.
func specOwnedBy(n *cluster.Node, backendName, owner string, seed int) conv.ConvSpec {
	for i := seed; ; i++ {
		spec := conv.ConvSpec{
			Name: "cluster-demo", InH: 8 + i%8, InW: 8 + i/8%8, InC: 4,
			OutC: 1 + i%16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
		}
		if spec.Validate() != nil {
			continue
		}
		if n.Owner(backendName, device.HiKey970.Name, spec) == owner {
			return spec
		}
	}
}
