// Quickstart: profile one convolutional layer across channel counts on
// an embedded GPU target, find the latency staircase, and read off the
// channel counts a performance-aware pruner should use.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"perfprune"
)

func main() {
	// The layer from the paper's Tables I-IV and Fig. 14: ResNet-50
	// layer 16 (3x3, 128 channels), on the HiKey 970's Mali G72 with
	// the Arm Compute Library GEMM path.
	resnet := perfprune.ResNet50()
	layer, ok := resnet.Layer("ResNet.L16")
	if !ok {
		log.Fatal("ResNet.L16 missing")
	}
	target := perfprune.Target{
		Device:  perfprune.HiKey970,
		Library: perfprune.ACLGEMM(),
	}

	// Sweep the output channel count 1..128, the median of 10 runs per
	// configuration (the paper's §III-D protocol).
	curve, err := perfprune.Sweep(target, layer.Spec, 1, layer.Spec.OutC)
	if err != nil {
		log.Fatal(err)
	}

	// The headline anomaly: pruning from 93 to 92 channels makes the
	// layer dramatically SLOWER, because the OpenCL runtime splits the
	// GEMM into an extra hardware job.
	t93 := curve[92].Ms
	t92 := curve[91].Ms
	fmt.Printf("t(93 channels) = %.2f ms, t(92 channels) = %.2f ms -> pruning one more channel costs %.2fx\n",
		t93, t92, t92/t93)

	// Staircase analysis finds the Pareto-optimal right edges: the only
	// channel counts worth pruning to on this target.
	analysis, err := perfprune.Analyze(curve)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d latency stairs; optimal channel counts on %s:\n", len(analysis.Stairs), target)
	for _, e := range analysis.Edges {
		fmt.Printf("  keep %3d channels -> %7.2f ms\n", e.Channels, e.Ms)
	}

	// A pruning search constrained to these edges can never regress
	// latency; anything else risks the 92-channel trap.
	if edge, ok := analysis.EdgeAtMost(100); ok {
		fmt.Printf("\nbest configuration with at most 100 channels: %d channels at %.2f ms\n",
			edge.Channels, edge.Ms)
	}
}
