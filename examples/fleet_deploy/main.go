// Fleet deployment: shipping ONE pruned VGG-16 to a heterogeneous
// fleet — HiKey 970 and Odroid XU4 (Arm Compute Library over OpenCL),
// Jetson TX2 and Nano (cuDNN). The paper shows optimal channel counts
// are a property of the target, so no single board's plan is right for
// the fleet; the cross-layer planner instead optimizes the shared plan
// directly, here for the worst-case latency every device must meet.
// The example compares the fleet plan against each board's own greedy
// plan applied fleet-wide and prints the per-board table.
//
//	go run ./examples/fleet_deploy
package main

import (
	"context"
	"fmt"
	"log"

	"perfprune"
)

func main() {
	vgg := perfprune.VGG16()
	targets := []perfprune.Target{
		{Device: perfprune.HiKey970, Library: perfprune.ACLGEMM()},
		{Device: perfprune.OdroidXU4, Library: perfprune.ACLGEMM()},
		{Device: perfprune.JetsonTX2, Library: perfprune.CuDNN()},
		{Device: perfprune.JetsonNano, Library: perfprune.CuDNN()},
	}
	const maxAccuracyDrop = 2.0 // points of modeled top-1

	// One engine for the whole fleet: every profile shares the
	// measurement cache.
	eng := perfprune.NewEngine()
	fleet := make([]perfprune.FleetTarget, len(targets))
	for i, tg := range targets {
		fmt.Printf("profiling %s ...\n", tg)
		np, err := perfprune.ProfileNetworkContext(context.Background(), eng, tg, vgg)
		if err != nil {
			log.Fatal(err)
		}
		fleet[i] = perfprune.FleetTarget{Profile: np}
	}

	fp, err := perfprune.PlanFleet(fleet, maxAccuracyDrop, perfprune.WorstCase)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(fp.Table().Render())

	// The shared plan must beat the naive alternative: picking any one
	// board's plan and shipping it everywhere.
	fmt.Println("\nversus each board's own greedy plan applied fleet-wide:")
	for i, tg := range targets {
		pl, err := perfprune.NewPlanner(fleet[i].Profile)
		if err != nil {
			log.Fatal(err)
		}
		own, err := pl.PerformanceAware(1.5, maxAccuracyDrop)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for _, member := range fleet {
			lat, err := member.Profile.LatencyOf(own.Plan)
			if err != nil {
				log.Fatal(err)
			}
			if lat > worst {
				worst = lat
			}
		}
		fmt.Printf("  %-28s plan fleet-wide: worst case %10.3f ms\n", tg.String(), worst)
	}
	fmt.Printf("  %-28s plan fleet-wide: worst case %10.3f ms  <- shared fleet plan\n",
		"cross-layer", fp.WorstCaseMs)
}
