// Pruning hazard: the paper's motivating scenario end to end. A model
// compression pass prunes 12% of every layer's channels — the standard
// accuracy-driven recipe — and the "smaller" network runs SLOWER on the
// embedded GPU than the original. The example does the real weight
// surgery (§II-B channel removal on actual filter banks), verifies the
// pruned convolution still computes the correct subset numerically,
// and then shows the latency story on the device.
//
//	go run ./examples/pruning_hazard
package main

import (
	"fmt"
	"log"

	"perfprune"
)

func main() {
	resnet := perfprune.ResNet50()
	weights := perfprune.BuildWeights(resnet)

	// --- Real weight surgery on one layer -------------------------------
	layer, _ := resnet.Layer("ResNet.L1")
	w := weights["ResNet.L1"]
	keep := layer.Spec.OutC - 1 // prune a single channel: 64 -> 63

	pruned, survivors, err := perfprune.PruneToWidth(w, keep, perfprune.L1Magnitude)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pruned %s from %d to %d channels (dropped original channel %d)\n",
		layer.Label, layer.Spec.OutC, keep, missing(survivors, layer.Spec.OutC))

	// The pruned layer still computes exactly the surviving channels:
	// run the real convolution before and after.
	in := perfprune.NewTensor(perfprune.NHWC, 1, layer.Spec.InH, layer.Spec.InW, layer.Spec.InC)
	in.RandomUniform(42, 1)
	full, err := perfprune.ConvGEMM(layer.Spec, in, w)
	if err != nil {
		log.Fatal(err)
	}
	prunedSpec := layer.Spec.WithOutC(keep)
	compact, err := perfprune.ConvGEMM(prunedSpec, in, pruned)
	if err != nil {
		log.Fatal(err)
	}
	for i, orig := range survivors {
		if compact.At(0, 0, 0, i) != full.At(0, 0, 0, orig) {
			log.Fatalf("pruned conv output differs at channel %d", i)
		}
	}
	fmt.Println("numerical check: pruned convolution matches the surviving channels exactly")

	// --- The latency story ----------------------------------------------
	// On the ACL direct path, that single-channel prune is catastrophic
	// (the work-group heuristic degrades, §IV-A2).
	target := perfprune.Target{Device: perfprune.HiKey970, Library: perfprune.ACLDirect()}
	curve, err := perfprune.Sweep(target, layer.Spec, keep, layer.Spec.OutC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\non %s: t(%d ch) = %.2f ms, t(%d ch) = %.2f ms -> %.1fx SLOWER after pruning\n",
		target, layer.Spec.OutC, curve[len(curve)-1].Ms, keep, curve[0].Ms,
		curve[0].Ms/curve[len(curve)-1].Ms)

	// --- Whole-network view ---------------------------------------------
	np, err := perfprune.ProfileNetwork(target, resnet)
	if err != nil {
		log.Fatal(err)
	}
	planner, err := perfprune.NewPlanner(np)
	if err != nil {
		log.Fatal(err)
	}
	unin, err := planner.Uninstructed(0.12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuninstructed 12%% pruning of all of ResNet-50: %.0f ms -> %.0f ms (%.2fx)\n",
		unin.BaselineMs, unin.LatencyMs, unin.Speedup)
	if unin.Speedup < 1 {
		fmt.Println("the compressed network is SLOWER than the original — the paper's headline hazard")
	}
}

func missing(survivors []int, n int) int {
	seen := make([]bool, n)
	for _, s := range survivors {
		seen[s] = true
	}
	for i, ok := range seen {
		if !ok {
			return i
		}
	}
	return -1
}
