// Library comparison: the paper's §V finding that "no optimal library
// exists to outperform across all neural network layers" — neither the
// Arm Compute Library nor TVM dominates on a Mali GPU, and the direct
// path wins nowhere except under tight memory. This example profiles
// every unique ResNet-50 layer under all three OpenCL configurations on
// the HiKey 970 and prints the per-layer winner, plus the cuDNN numbers
// on the Jetson TX2 for cross-platform scale.
//
//	go run ./examples/library_compare
package main

import (
	"fmt"
	"log"

	"perfprune"
)

func main() {
	resnet := perfprune.ResNet50()

	type entry struct {
		name string
		tg   perfprune.Target
	}
	mali := []entry{
		{"ACL-GEMM", perfprune.Target{Device: perfprune.HiKey970, Library: perfprune.ACLGEMM()}},
		{"ACL-Direct", perfprune.Target{Device: perfprune.HiKey970, Library: perfprune.ACLDirect()}},
		{"TVM", perfprune.Target{Device: perfprune.HiKey970, Library: perfprune.TVM()}},
	}
	cudnn := perfprune.Target{Device: perfprune.JetsonTX2, Library: perfprune.CuDNN()}

	fmt.Printf("%-14s %12s %12s %12s   %-10s %14s\n",
		"layer", "ACL-GEMM", "ACL-Direct", "TVM", "winner", "cuDNN (TX2)")
	wins := map[string]int{}
	for _, l := range resnet.UniqueLayers() {
		times := make([]float64, len(mali))
		best, bestIdx := 0.0, -1
		for i, e := range mali {
			pts, err := perfprune.Sweep(e.tg, l.Spec, l.Spec.OutC, l.Spec.OutC)
			if err != nil {
				log.Fatal(err)
			}
			times[i] = pts[0].Ms
			if bestIdx < 0 || times[i] < best {
				best, bestIdx = times[i], i
			}
		}
		tx2, err := perfprune.Sweep(cudnn, l.Spec, l.Spec.OutC, l.Spec.OutC)
		if err != nil {
			log.Fatal(err)
		}
		winner := mali[bestIdx].name
		wins[winner]++
		fmt.Printf("%-14s %9.2f ms %9.2f ms %9.2f ms   %-10s %11.2f ms\n",
			l.Label, times[0], times[1], times[2], winner, tx2[0].Ms)
	}

	fmt.Println("\nper-layer wins on the Mali G72:")
	for _, e := range mali {
		fmt.Printf("  %-10s %2d layers\n", e.name, wins[e.name])
	}
	fmt.Println("\nno single library wins everywhere — the paper's §V conclusion:")
	fmt.Println("future runtimes should pick the implementation per layer shape.")
}
