// Mobile deployment: the end-to-end workflow the paper's introduction
// motivates — shipping ResNet-50 image classification to a phone-class
// device under a latency budget. The example runs the full §V loop on
// two very different targets (Mali G72 with ACL, Jetson Nano with
// cuDNN), showing that the optimal channel configuration is a property
// of the target: the same network must be pruned differently per
// device, which is exactly why pruning must be hardware-instructed.
//
//	go run ./examples/mobile_deploy
package main

import (
	"fmt"
	"log"
	"sort"

	"perfprune"
)

func main() {
	resnet := perfprune.ResNet50()
	targets := []perfprune.Target{
		{Device: perfprune.HiKey970, Library: perfprune.ACLGEMM()},
		{Device: perfprune.JetsonNano, Library: perfprune.CuDNN()},
	}

	const targetSpeedup = 1.5
	const maxAccuracyDrop = 1.5 // points of modeled top-1

	plans := make([]perfprune.PlanResult, len(targets))
	for i, tg := range targets {
		fmt.Printf("=== %s ===\n", tg)
		np, err := perfprune.ProfileNetwork(tg, resnet)
		if err != nil {
			log.Fatal(err)
		}
		planner, err := perfprune.NewPlanner(np)
		if err != nil {
			log.Fatal(err)
		}
		res, err := planner.PerformanceAware(targetSpeedup, maxAccuracyDrop)
		if err != nil {
			log.Fatal(err)
		}
		plans[i] = res
		fmt.Printf("baseline %.0f ms -> pruned %.0f ms (%.2fx), modeled top-1 %.1f%% (-%.2f)\n\n",
			res.BaselineMs, res.LatencyMs, res.Speedup, res.Accuracy, res.AccuracyDrop)
	}

	// The point of the paper: the per-layer channel choices differ
	// between devices because each library/device pair has its own
	// staircase. Show layers where the two plans disagree.
	fmt.Println("layers where the two devices want different channel counts:")
	labels := make([]string, 0)
	for label := range plans[0].Plan {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	differ := 0
	for _, label := range labels {
		a, b := plans[0].Plan[label], plans[1].Plan[label]
		if a != b {
			l, _ := resnet.Layer(label)
			fmt.Printf("  %-14s full %4d | %-11s keeps %4d | %-11s keeps %4d\n",
				label, l.Spec.OutC, targets[0].Device.Name, a, targets[1].Device.Name, b)
			differ++
		}
	}
	if differ == 0 {
		fmt.Println("  (none — unexpected; staircases should differ across targets)")
	} else {
		fmt.Printf("\n%d of %d layers are pruned differently per device:\n", differ, len(labels))
		fmt.Println("a single device-agnostic pruned model is suboptimal everywhere.")
	}
}
