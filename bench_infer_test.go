package perfprune

// End-to-end inference benchmarks for the fast real-compute path.
// Each benchmark times the warm zero-alloc engine.Chain.Infer loop and
// reports, as speedup_x, how much faster it is than the preserved
// naive reference (per-call weight reshape, naive kernels) measured in
// the same process immediately before the timed loop. The ns/op
// column is what cmd/benchgate gates; speedup_x documents the win the
// gate protects. Spatial divisors are chosen so the probe-sized
// extents the paper's workflow actually measures dominate: there the
// naive path's per-call weight reshaping is the bottleneck the packed
// fast path amortizes away.

import (
	"testing"
	"time"

	"perfprune/internal/conv"
	"perfprune/internal/engine"
	"perfprune/internal/nets"
	"perfprune/internal/tensor"
)

func buildBenchChain(b *testing.B, n nets.Network, div int) *engine.Chain {
	b.Helper()
	c, err := engine.BuildChain(n, nets.BuildWeights(n), div)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchChainInput(c *engine.Chain, seed uint64) *tensor.Tensor {
	s := c.Stages[0].Spec
	in := tensor.New(tensor.NHWC, 1, s.InH, s.InW, s.InC)
	in.RandomUniform(seed, 1)
	return in
}

// benchInferSpeedup times one naive reference pass, then the warm fast
// Infer loop, reporting the ratio.
func benchInferSpeedup(b *testing.B, c *engine.Chain) {
	b.Helper()
	in := benchChainInput(c, 1)
	start := time.Now()
	if _, err := c.InferReference(in); err != nil {
		b.Fatal(err)
	}
	refNs := float64(time.Since(start).Nanoseconds())
	if _, err := c.Infer(in); err != nil { // build the plan outside the timer
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Infer(in); err != nil {
			b.Fatal(err)
		}
	}
	fastNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(refNs/fastNs, "speedup_x")
}

// BenchmarkInferVGG16RealGEMM runs the full VGG-16 trunk through the
// real-GEMM path at probe-scale extents (spatial /56). At this scale
// the naive path is dominated by the per-call column-major weight
// reshape, which the fast path replaces with once-per-plan packed
// panels — the acceptance target is >= 5x and the measured win is ~7x.
func BenchmarkInferVGG16RealGEMM(b *testing.B) {
	benchInferSpeedup(b, buildBenchChain(b, nets.VGG16(), 56))
}

// BenchmarkInferMobileNetV1 runs the full MobileNetV1 trunk (depthwise
// + pointwise + strided stages) warm through the engine at spatial /8.
func BenchmarkInferMobileNetV1(b *testing.B) {
	benchInferSpeedup(b, buildBenchChain(b, nets.MobileNetV1(), 8))
}

// BenchmarkInferMobileNetRealDepthwise measures MobileNetV1's
// depthwise layers through the real-depthwise kernel path, each layer
// at its own inventory extents (spatial /4) — the shape the
// Real-Depthwise backend probes — driven warm the way the engine runs
// it: weights packed tap-major once, outputs written into reused
// buffers. The naive reference is the pre-fast-path kernel it
// replaced (strided weight loads cap it near 0.5 GMAC/s).
// Acceptance target: >= 3x.
func BenchmarkInferMobileNetRealDepthwise(b *testing.B) {
	c := buildBenchChain(b, nets.MobileNetV1(), 4)
	type dwCase struct {
		spec conv.ConvSpec
		in   *tensor.Tensor
		w    *tensor.Tensor
		wp   []float32
		out  *tensor.Tensor
	}
	var cases []dwCase
	for _, st := range c.Stages {
		if !st.Spec.IsDepthwise() {
			continue
		}
		in := tensor.New(tensor.NHWC, 1, st.Spec.InH, st.Spec.InW, st.Spec.InC)
		in.RandomUniform(tensor.Hash64(st.Label), 1)
		cases = append(cases, dwCase{
			spec: st.Spec, in: in, w: st.Weights,
			wp:  conv.PackDepthwiseWeights(st.Spec, st.Weights, nil),
			out: tensor.New(tensor.NHWC, 1, st.Spec.OutH(), st.Spec.OutW(), st.Spec.OutC),
		})
	}
	if len(cases) == 0 {
		b.Fatal("MobileNetV1 chain has no depthwise stages")
	}
	start := time.Now()
	for _, dc := range cases {
		if _, err := conv.DepthwiseNaive(dc.spec, dc.in, dc.w); err != nil {
			b.Fatal(err)
		}
	}
	refNs := float64(time.Since(start).Nanoseconds())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, dc := range cases {
			conv.DepthwiseInto(dc.spec, dc.in, dc.wp, dc.out)
		}
	}
	fastNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(refNs/fastNs, "speedup_x")
}
