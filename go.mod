module perfprune

go 1.24
