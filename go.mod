module perfprune

go 1.23.0
