package perfprune

import (
	"testing"
)

func TestComputeFacadeConvolution(t *testing.T) {
	spec := ConvSpec{
		Name: "facade", InH: 8, InW: 8, InC: 3, OutC: 5,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	}
	in := NewTensor(NHWC, 1, 8, 8, 3)
	in.RandomUniform(11, 1)
	w := NewTensor(OHWI, 5, 3, 3, 3)
	w.HeInit(12, 27)

	d, err := ConvDirect(spec, in, w)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ConvGEMM(spec, in, w)
	if err != nil {
		t.Fatal(err)
	}
	if d.Elems() != g.Elems() || d.Elems() != 8*8*5 {
		t.Fatalf("output sizes: direct %d, gemm %d", d.Elems(), g.Elems())
	}
	for i := range d.Data() {
		diff := d.Data()[i] - g.Data()[i]
		if diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("direct and GEMM disagree at %d", i)
		}
	}
}

func TestComputeFacadePruning(t *testing.T) {
	w := NewTensor(OHWI, 8, 1, 1, 2)
	for c := 0; c < 8; c++ {
		w.Set(float32(c+1), c, 0, 0, 0)
		w.Set(float32(c+1), c, 0, 0, 1)
	}
	pruned, survivors, err := PruneToWidth(w, 3, L1Magnitude)
	if err != nil {
		t.Fatal(err)
	}
	// L1 keeps the largest-magnitude channels: 5, 6, 7.
	want := []int{5, 6, 7}
	for i, s := range survivors {
		if s != want[i] {
			t.Fatalf("survivors = %v, want %v", survivors, want)
		}
	}
	if pruned.Dim(0) != 3 {
		t.Fatalf("pruned width %d", pruned.Dim(0))
	}
}

func TestComputeFacadeWeightsAndPlans(t *testing.T) {
	n := AlexNet()
	w := BuildWeights(n)
	if len(w) != len(n.Layers) {
		t.Fatalf("weights for %d layers, want %d", len(w), len(n.Layers))
	}
	p, err := UniformPlan(n, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range n.Layers {
		keep, ok := p[l.Label]
		if !ok {
			t.Fatalf("%s missing from plan", l.Label)
		}
		if keep >= l.Spec.OutC || keep < 1 {
			t.Fatalf("%s keeps %d of %d", l.Label, keep, l.Spec.OutC)
		}
	}
	if _, err := UniformPlan(n, 1.5); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}
