package perfprune

// Ablations of the simulator's causal mechanisms. The paper attributes
// the ACL GEMM staircase jump to the extra runtime-split job (§IV-B1:
// job creation/dispatch overhead "often outweighs the benefits").
// These tests knock out each modeled component — the CPU-GPU
// resubmission gap and the remainder kernel's core occupancy — and
// verify the jump decomposes accordingly, i.e. that the figures come
// from the mechanisms and not from curve fitting. Benchmarks report the
// residual jump under each ablation.

import (
	"testing"

	"perfprune/internal/acl"
	"perfprune/internal/device"
	"perfprune/internal/nets"
)

// jump measures t(92)/t(93) for ResNet-50 L16 under ACL GEMM on dev.
func jump9293(tb testing.TB, dev device.Device) float64 {
	tb.Helper()
	l16 := mustLayer(nets.ResNet50(), "ResNet.L16").Spec
	t92, err := acl.TimeMs(dev, l16.WithOutC(92), acl.GEMMConv)
	if err != nil {
		tb.Fatal(err)
	}
	t93, err := acl.TimeMs(dev, l16.WithOutC(93), acl.GEMMConv)
	if err != nil {
		tb.Fatal(err)
	}
	return t92 / t93
}

// TestAblationSplitGap: removing the CPU-GPU resubmission gap must
// remove roughly half of the 92-vs-93-channel jump; removing the
// occupancy penalty as well (many small cores -> remainder fills the
// machine) must flatten it almost completely.
func TestAblationSplitGap(t *testing.T) {
	full := jump9293(t, device.HiKey970)
	if full < 1.5 {
		t.Fatalf("baseline jump %.2fx, expected ~1.65x", full)
	}

	noGap := device.HiKey970
	noGap.GPU.SplitResubmitCycles = 0
	partial := jump9293(t, noGap)
	if partial >= full {
		t.Fatalf("removing the resubmission gap did not shrink the jump: %.2fx vs %.2fx", partial, full)
	}
	if partial < 1.15 {
		t.Fatalf("gap ablation removed too much (%.2fx): the occupancy component should remain", partial)
	}

	// Also remove the occupancy component: a 1-core GPU always runs at
	// occupancy 1 (same aggregate throughput kept by scaling IPC).
	noOcc := noGap
	noOcc.GPU.ArithIPC *= float64(noOcc.GPU.Cores)
	noOcc.GPU.MemIPC *= float64(noOcc.GPU.Cores)
	noOcc.GPU.Cores = 1
	flat := jump9293(t, noOcc)
	if flat > 1.1 {
		t.Fatalf("with both mechanisms removed the jump should vanish; got %.2fx", flat)
	}
}

// TestAblationJobSetupFloor: the per-job setup cost is what caps the
// deep-pruning speedups of tiny layers; without it, speedups explode
// beyond anything the paper reports.
func TestAblationJobSetupFloor(t *testing.T) {
	l1 := mustLayer(nets.ResNet50(), "ResNet.L1").Spec
	speedup := func(dev device.Device) float64 {
		tFull, err := acl.TimeMs(dev, l1, acl.DirectConv)
		if err != nil {
			t.Fatal(err)
		}
		tTiny, err := acl.TimeMs(dev, l1.WithOutC(2), acl.DirectConv)
		if err != nil {
			t.Fatal(err)
		}
		return tFull / tTiny
	}
	withSetup := speedup(device.HiKey970)
	noSetup := device.HiKey970
	noSetup.GPU.JobSetupCycles = 0
	withoutSetup := speedup(noSetup)
	if withoutSetup <= withSetup {
		t.Fatalf("removing job setup did not increase the deep-prune speedup: %.1fx vs %.1fx",
			withoutSetup, withSetup)
	}
}

// TestAblationCrossDevice: the staircase SHAPE is a property of the
// library heuristics, not the silicon — the Odroid XU4 must show the
// same split/no-split structure as the HiKey 970 (the paper observed
// "similar patterns ... on the HiKey 970 and on the Odroid XU4").
func TestAblationCrossDevice(t *testing.T) {
	l16 := mustLayer(nets.ResNet50(), "ResNet.L16").Spec
	for _, c := range []int{76, 78, 92, 93, 96, 97} {
		h, err := acl.Run(device.HiKey970, l16.WithOutC(c), acl.GEMMConv)
		if err != nil {
			t.Fatal(err)
		}
		o, err := acl.Run(device.OdroidXU4, l16.WithOutC(c), acl.GEMMConv)
		if err != nil {
			t.Fatal(err)
		}
		if h.Result.Counters.SplitJobs != o.Result.Counters.SplitJobs {
			t.Errorf("channels=%d: split decision differs across boards (%d vs %d)",
				c, h.Result.Counters.SplitJobs, o.Result.Counters.SplitJobs)
		}
		if o.Ms <= h.Ms {
			t.Errorf("channels=%d: Odroid (%.2f ms) not slower than HiKey (%.2f ms)", c, o.Ms, h.Ms)
		}
	}
}

// BenchmarkAblationGap reports the 92/93 jump with and without the
// resubmission gap — the quantitative decomposition of Fig. 14's
// mechanism.
func BenchmarkAblationGap(b *testing.B) {
	var full, noGapJump float64
	noGap := device.HiKey970
	noGap.GPU.SplitResubmitCycles = 0
	for i := 0; i < b.N; i++ {
		full = jump9293(b, device.HiKey970)
		noGapJump = jump9293(b, noGap)
	}
	b.ReportMetric(full, "jump_full_x")
	b.ReportMetric(noGapJump, "jump_nogap_x")
}

// BenchmarkAblationVectorBlock sweeps the hypothetical vectorization
// block the GEMM kernel uses. The paper observes plateaus "in groups of
// 4 which matches the size of vectorization"; the metric reports the
// plateau width detected at each block size via the Blocks quantity.
func BenchmarkAblationVectorBlock(b *testing.B) {
	// The block size is an architectural constant of ACL's kernel; the
	// observable is that plateau width == block size. Verify by counting
	// distinct latencies across one 16-channel window.
	l16 := mustLayer(nets.ResNet50(), "ResNet.L16").Spec
	var plateau float64
	for i := 0; i < b.N; i++ {
		seen := map[int64]int{}
		for c := 93; c <= 96; c++ {
			ms, err := acl.TimeMs(device.HiKey970, l16.WithOutC(c), acl.GEMMConv)
			if err != nil {
				b.Fatal(err)
			}
			seen[int64(ms*10)]++ // 0.1 ms resolution (im2col adds microseconds per channel)
		}
		plateau = float64(len(seen))
	}
	// 1.0 = all four counts share one plateau (the "groups of 4").
	b.ReportMetric(plateau, "distinct_levels")
}
