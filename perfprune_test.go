package perfprune

import (
	"testing"
)

func TestFacadeDevices(t *testing.T) {
	if len(Devices()) != 4 {
		t.Fatalf("%d devices, want 4", len(Devices()))
	}
	if HiKey970.Name != "HiKey 970" || JetsonNano.Name != "Jetson Nano" {
		t.Fatal("device re-exports wrong")
	}
}

func TestFacadeLibraries(t *testing.T) {
	libs := Libraries()
	if len(libs) != 4 {
		t.Fatalf("%d libraries, want 4", len(libs))
	}
	if !ACLGEMM().Supports(HiKey970) || ACLGEMM().Supports(JetsonTX2) {
		t.Error("ACLGEMM device support wrong")
	}
	if !CuDNN().Supports(JetsonTX2) || CuDNN().Supports(HiKey970) {
		t.Error("CuDNN device support wrong")
	}
	if !TVM().Supports(OdroidXU4) {
		t.Error("TVM should support the Odroid")
	}
}

func TestFacadeNetworks(t *testing.T) {
	if len(Networks()) != 4 {
		t.Fatal("want 4 networks (the paper's three + MobileNetV1)")
	}
	if len(ResNet50().Layers) != 53 || len(VGG16().Layers) != 13 || len(AlexNet().Layers) != 5 {
		t.Fatal("network layer counts wrong")
	}
	if len(MobileNetV1().Layers) != 27 {
		t.Fatal("MobileNetV1 layer count wrong")
	}
}

func TestFacadeSweepAndAnalyze(t *testing.T) {
	l16, ok := ResNet50().Layer("ResNet.L16")
	if !ok {
		t.Fatal("L16 missing")
	}
	tg := Target{Device: JetsonTX2, Library: CuDNN()}
	curve, err := Sweep(tg, l16.Spec, 20, 128)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(curve)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 4's four optimal execution points within 20..128 land at the
	// stair right edges 32, 64, 96, 128.
	want := map[int]bool{32: true, 64: true, 96: true, 128: true}
	for _, e := range a.Edges {
		if !want[e.Channels] {
			t.Errorf("unexpected edge at %d channels", e.Channels)
		}
		delete(want, e.Channels)
	}
	for c := range want {
		t.Errorf("missing edge at %d channels", c)
	}
}

func TestFacadeProbeStaircase(t *testing.T) {
	l16, ok := ResNet50().Layer("ResNet.L16")
	if !ok {
		t.Fatal("L16 missing")
	}
	tg := Target{Device: JetsonTX2, Library: CuDNN()}
	res, err := ProbeStaircase(tg, l16.Spec, 20, 128)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := Sweep(tg, l16.Spec, 20, 128)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(curve)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Analysis.Edges) != len(want.Edges) {
		t.Fatalf("probe found %d edges, sweep %d", len(res.Analysis.Edges), len(want.Edges))
	}
	for i, e := range res.Analysis.Edges {
		if e != want.Edges[i] {
			t.Errorf("edge %d: probe %+v, sweep %+v", i, e, want.Edges[i])
		}
	}
	if res.Stats.FellBack {
		t.Error("cuDNN probe fell back")
	}
	if res.Stats.Avoided() <= 0 {
		t.Errorf("probe avoided nothing: %+v", res.Stats)
	}
}

func TestFacadePlanningPipeline(t *testing.T) {
	tg := Target{Device: HiKey970, Library: ACLDirect()}
	np, err := ProfileNetwork(tg, AlexNet())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlanner(np)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.PerformanceAware(1.3, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 1.0 {
		t.Fatalf("plan regressed latency: %.2fx", res.Speedup)
	}
	if res.Accuracy <= 0 || res.Accuracy > 100 {
		t.Fatalf("implausible accuracy %v", res.Accuracy)
	}
}
