// Command perfpruned is the pruning-as-a-service daemon: it serves the
// paper's profile → staircase → prune-to-right-edge workflow over
// HTTP/JSON, sharing one warm measurement cache across every request.
// With -store the cache survives restarts: completed measurements are
// snapshotted to disk (periodically and at shutdown) and warm-started
// at the next boot, so a restarted daemon answers repeat plans without
// re-paying the measurement bill.
//
// Usage:
//
//	perfpruned -addr :7070 -workers 8 -backends acl-gemm,acl-direct,cudnn,tvm \
//	           -store /var/lib/perfprune/profile.store -snapshot-interval 5m
//
// Endpoints (see README.md for a curl quickstart):
//
//	GET  /v1/backends   registered backends and the boards they target
//	GET  /v1/devices    the paper's four evaluation boards
//	GET  /v1/networks   the network inventories (ResNet-50, VGG-16, AlexNet)
//	GET  /v1/stats      measurement-cache, store and request counters
//	POST /v1/sweep      layer × channel-range latency curve
//	POST /v1/staircase  sweep + stair/right-edge analysis
//	POST /v1/plan       whole-network prune plan under an accuracy budget
//	POST /v1/frontier   latency–accuracy Pareto frontier / fleet planning
//	POST /v1/telemetry  fleet telemetry: drift detection, staircase repair, re-plan
//	GET  /v1/plans      plan-version histories (and /v1/plans/{network}/{target},
//	                    which long-polls with ?wait_version=N&timeout_s=T)
//	GET  /v1/snapshot   the live cache as profile-store JSON lines (ETag/If-None-Match)
//	GET  /v1/peers      cluster membership (PUT replaces the peer set)
//	POST /v1/measure    owner-side measurement RPC for forwarded cold keys
//	GET  /metrics       Prometheus text-format metrics
//
// With -peers the daemon joins a fleet: it gossip-pulls peer snapshots
// on a jittered interval (warming its cache with their measurements)
// and, with -cluster-owner, forwards cold measurements to the replica
// that owns them on a consistent-hash ring, falling back to local
// measurement when the owner is unreachable.
//
// With -debug-addr a net/http/pprof listener is mounted on a separate
// address; requests are access-logged as JSON lines on stderr (disable
// with -quiet-access), and POST bodies may set "trace": true to get a
// stage-timing span tree back in the response.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"syscall"
	"time"

	"perfprune/internal/cluster"
	"perfprune/internal/profilestore"
	"perfprune/internal/service"

	// Backends self-register at init; link the extension packages so
	// the daemon's registry matches `perfprune backends`.
	_ "perfprune/internal/autotune"
	_ "perfprune/internal/hybrid"
)

// options is the daemon's parsed command line.
type options struct {
	addr             string
	workers          int
	backends         string
	store            string
	snapshotInterval time.Duration
	debugAddr        string
	quietAccess      bool

	// Multi-replica mode (see internal/cluster): peers to gossip-pull
	// from, the URL peers reach this replica at, the anti-entropy
	// period, and whether cold measurements forward to their
	// consistent-hash owner.
	peers        string
	advertise    string
	pullInterval time.Duration
	clusterOwner bool
}

func main() {
	opt := options{}
	flag.StringVar(&opt.addr, "addr", ":7070", "listen address (use :0 for an ephemeral port; the bound address is logged)")
	flag.IntVar(&opt.workers, "workers", 0, "per-request sweep workers (0 = GOMAXPROCS)")
	flag.StringVar(&opt.backends, "backends", "",
		"comma-separated backend allowlist (empty = all registered; use the simulated backends for deterministic serving)")
	flag.StringVar(&opt.store, "store", "",
		"persistent profile store file: warm-start the measurement cache from it at boot and snapshot back to it (empty = in-memory only)")
	flag.DurationVar(&opt.snapshotInterval, "snapshot-interval", 5*time.Minute,
		"how often to flush the cache to -store while serving (a final flush always runs at shutdown; <= 0 disables periodic flushes)")
	flag.StringVar(&opt.debugAddr, "debug-addr", "",
		"separate listen address for net/http/pprof (empty = pprof disabled); keep it off the public interface")
	flag.BoolVar(&opt.quietAccess, "quiet-access", false, "suppress per-request access-log lines on stderr")
	flag.StringVar(&opt.peers, "peers", "",
		"comma-separated peer base URLs (e.g. http://10.0.0.2:7070) to gossip-pull snapshots from; empty = standalone")
	flag.StringVar(&opt.advertise, "advertise", "",
		"base URL peers reach this replica at (default http://<bound addr>); anchors this replica on the ownership ring")
	flag.DurationVar(&opt.pullInterval, "pull-interval", 5*time.Second,
		"anti-entropy period for peer snapshot pulls (jittered +/-20%)")
	flag.BoolVar(&opt.clusterOwner, "cluster-owner", true,
		"forward cold measurements to their consistent-hash owner instead of sweeping locally (with local fallback)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, opt, nil); err != nil {
		fmt.Fprintf(os.Stderr, "perfpruned: %v\n", err)
		os.Exit(1)
	}
}

// run boots and serves until ctx is cancelled. The listener is bound
// synchronously — bind errors return immediately instead of racing the
// "serving" banner out of a goroutine — and the logged address is the
// listener's real one, so -addr :0 reports the kernel-chosen port
// (which is what lets tests and CI drive an ephemeral-port daemon
// without guessing). ready, when non-nil, receives the bound address
// once the handler is about to serve.
func run(ctx context.Context, opt options, ready func(net.Addr)) error {
	cfg := service.Config{Workers: opt.workers}
	if !opt.quietAccess {
		cfg.AccessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if opt.backends != "" {
		for _, key := range strings.Split(opt.backends, ",") {
			if key = strings.TrimSpace(key); key != "" {
				cfg.Backends = append(cfg.Backends, key)
			}
		}
	}
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	logBootInfo()

	var mgr *profilestore.Manager
	if opt.store != "" {
		mgr = profilestore.NewManager(opt.store, srv.Cache())
		// The closed-loop state (tracked keys, repaired staircases,
		// plan-version history) persists beside the cache snapshot, so a
		// restarted daemon resumes drift watch instead of forgetting
		// every repair the fleet paid for.
		mgr.EnableDrift(opt.store+".drift", srv.Drift())
		if err := mgr.WarmStart(); err != nil {
			return fmt.Errorf("warm-start from %s: %w", opt.store, err)
		}
		fmt.Printf("perfpruned: %s\n", mgr.Status())
		srv.SetStoreStats(func() service.StoreStats {
			st := mgr.Status()
			return service.StoreStats{
				Path:             st.Path,
				WarmStartEntries: st.WarmStartEntries,
				SkippedRecords:   st.SkippedRecords,
				SkipReason:       st.SkipReason,
				DriftPath:        st.DriftPath,
				DriftKeys:        st.DriftKeys,
				DriftSkippedKeys: st.DriftSkippedKeys,
				DriftSkipReason:  st.DriftSkipReason,
				Flushes:          st.Flushes,
				FlushErrors:      st.FlushErrors,
				LastFlushUnixMs:  st.LastFlushUnixMs,
			}
		})
	}

	var debugSrv *http.Server
	if opt.debugAddr != "" {
		// pprof lives on its own listener (and its own mux — never the
		// service mux), so profiling endpoints are only reachable where
		// -debug-addr points, typically localhost.
		dln, err := net.Listen("tcp", opt.debugAddr)
		if err != nil {
			return fmt.Errorf("bind debug %s: %w", opt.debugAddr, err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		fmt.Printf("perfpruned: pprof on http://%s/debug/pprof/\n", dln.Addr())
		go func() { _ = debugSrv.Serve(dln) }()
		defer debugSrv.Close()
	}

	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return fmt.Errorf("bind %s: %w", opt.addr, err)
	}
	fmt.Printf("perfpruned: serving on %s (backends: %s)\n",
		ln.Addr(), strings.Join(backendList(cfg), ", "))

	// The cluster node exists whenever the replica could join a fleet —
	// including a zero-peer boot, so PUT /v1/peers can attach peers at
	// runtime. Created after the bind because the default advertised
	// URL is the real bound address.
	advertise := opt.advertise
	if advertise == "" {
		advertise = "http://" + ln.Addr().String()
	}
	var peers []string
	for _, u := range strings.Split(opt.peers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			peers = append(peers, u)
		}
	}
	node := cluster.New(cluster.Config{
		Self:         advertise,
		Peers:        peers,
		PullInterval: opt.pullInterval,
		Cache:        srv.Cache(),
		Ownership:    opt.clusterOwner,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "perfpruned: "+format+"\n", args...)
		},
	})
	srv.SetCluster(node)
	if opt.clusterOwner {
		node.InstallHook()
	}
	go node.Run(ctx)
	if len(peers) > 0 {
		fmt.Printf("perfpruned: cluster %s pulling %s every %s (ownership: %v)\n",
			advertise, strings.Join(peers, ", "), opt.pullInterval, opt.clusterOwner)
	}

	if ready != nil {
		ready(ln.Addr())
	}

	var flushers sync.WaitGroup
	if mgr != nil {
		flushers.Add(1)
		go func() {
			defer flushers.Done()
			mgr.Run(ctx, opt.snapshotInterval, func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "perfpruned: "+format+"\n", args...)
			})
		}()
	}

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful drain: Shutdown stops accepting and waits for
		// in-flight requests (it does NOT cancel their contexts). If
		// the drain deadline passes, Close force-closes the remaining
		// connections, which cancels their request contexts and stops
		// their sweeps — a clean forced stop, not a failure.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := hs.Shutdown(shutdownCtx)
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Println("perfpruned: drain deadline passed, closing in-flight connections")
			err = hs.Close()
		}
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		// The final flush runs after the drain, so measurements that
		// completed during it still make the snapshot; the periodic
		// flusher has already stopped (its ctx is done).
		flushers.Wait()
		if mgr != nil {
			if err := mgr.Flush(); err != nil {
				return fmt.Errorf("shutdown flush: %w", err)
			}
			fmt.Printf("perfpruned: flushed %d entries to %s\n", srv.CacheStats().Entries, opt.store)
		}
		fmt.Println("perfpruned: shut down")
		return nil
	}
}

// logBootInfo prints the build identity once at boot — the same fields
// /v1/stats serves in its info section.
func logBootInfo() {
	rev := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				rev = kv.Value
			}
		}
	}
	fmt.Printf("perfpruned: %s, revision %s\n", runtime.Version(), rev)
}

func backendList(cfg service.Config) []string {
	if len(cfg.Backends) > 0 {
		return cfg.Backends
	}
	return []string{"all registered"}
}
