// Command perfpruned is the pruning-as-a-service daemon: it serves the
// paper's profile → staircase → prune-to-right-edge workflow over
// HTTP/JSON, sharing one warm measurement cache across every request.
//
// Usage:
//
//	perfpruned -addr :7070 -workers 8 -backends acl-gemm,acl-direct,cudnn,tvm
//
// Endpoints (see README.md for a curl quickstart):
//
//	GET  /v1/backends   registered backends and the boards they target
//	GET  /v1/devices    the paper's four evaluation boards
//	GET  /v1/networks   the network inventories (ResNet-50, VGG-16, AlexNet)
//	GET  /v1/stats      measurement-cache and request counters
//	POST /v1/sweep      layer × channel-range latency curve
//	POST /v1/staircase  sweep + stair/right-edge analysis
//	POST /v1/plan       whole-network prune plan under an accuracy budget
//	POST /v1/frontier   latency–accuracy Pareto frontier / fleet planning
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"perfprune/internal/service"

	// Backends self-register at init; link the extension packages so
	// the daemon's registry matches `perfprune backends`.
	_ "perfprune/internal/autotune"
	_ "perfprune/internal/hybrid"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	workers := flag.Int("workers", 0, "per-request sweep workers (0 = GOMAXPROCS)")
	backends := flag.String("backends", "",
		"comma-separated backend allowlist (empty = all registered; use the simulated backends for deterministic serving)")
	flag.Parse()

	if err := run(*addr, *workers, *backends); err != nil {
		fmt.Fprintf(os.Stderr, "perfpruned: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, workers int, backends string) error {
	cfg := service.Config{Workers: workers}
	if backends != "" {
		for _, key := range strings.Split(backends, ",") {
			if key = strings.TrimSpace(key); key != "" {
				cfg.Backends = append(cfg.Backends, key)
			}
		}
	}
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("perfpruned: serving on %s (backends: %s)\n",
			addr, strings.Join(backendList(cfg), ", "))
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful drain: Shutdown stops accepting and waits for
		// in-flight requests (it does NOT cancel their contexts). If
		// the drain deadline passes, Close force-closes the remaining
		// connections, which cancels their request contexts and stops
		// their sweeps — a clean forced stop, not a failure.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := hs.Shutdown(shutdownCtx)
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Println("perfpruned: drain deadline passed, closing in-flight connections")
			err = hs.Close()
		}
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		fmt.Println("perfpruned: shut down")
		return nil
	}
}

func backendList(cfg service.Config) []string {
	if len(cfg.Backends) > 0 {
		return cfg.Backends
	}
	return []string{"all registered"}
}
