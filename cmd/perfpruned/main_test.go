package main

// End-to-end daemon tests driven through run(): real TCP listener on
// an ephemeral port, real signal-shaped shutdown (context
// cancellation), real store file across a restart.

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perfprune/internal/backend"
	"perfprune/internal/conv"
	"perfprune/internal/core"
	"perfprune/internal/device"
	"perfprune/internal/nets"
	"perfprune/internal/service"
)

// countingACL wraps the ACL-GEMM simulator and counts Measure calls.
type countingACL struct {
	inner backend.Backend
	calls atomic.Int64
}

func (c *countingACL) Name() string                  { return "PD-Count-ACL" }
func (c *countingACL) Supports(d device.Device) bool { return c.inner.Supports(d) }
func (c *countingACL) Measure(d device.Device, spec conv.ConvSpec) (backend.Measurement, error) {
	c.calls.Add(1)
	return c.inner.Measure(d, spec)
}

var (
	countingOnce sync.Once
	counting     *countingACL
)

func countingKey(t *testing.T) *countingACL {
	t.Helper()
	countingOnce.Do(func() {
		inner, err := backend.Lookup("acl-gemm")
		if err != nil {
			t.Fatal(err)
		}
		counting = &countingACL{inner: inner}
		backend.Register("pd-count-acl", counting)
	})
	return counting
}

// daemon is one running run() invocation.
type daemon struct {
	addr net.Addr
	stop context.CancelFunc
	done chan error
}

// startDaemon boots run() on an ephemeral port and waits for the bound
// address.
func startDaemon(t *testing.T, opt options) *daemon {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	d := &daemon{stop: cancel, done: make(chan error, 1)}
	addrc := make(chan net.Addr, 1)
	go func() { d.done <- run(ctx, opt, func(a net.Addr) { addrc <- a }) }()
	select {
	case d.addr = <-addrc:
	case err := <-d.done:
		cancel()
		t.Fatalf("daemon exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never bound its listener")
	}
	t.Cleanup(cancel)
	return d
}

// shutdown stops the daemon and returns run()'s error.
func (d *daemon) shutdown(t *testing.T) error {
	t.Helper()
	d.stop()
	select {
	case err := <-d.done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
		return nil
	}
}

func (d *daemon) url(path string) string { return "http://" + d.addr.String() + path }

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestRunBindErrorSynchronous: a bad listen address fails run()
// immediately and synchronously — the old ListenAndServe-in-goroutine
// shape raced the error against the "serving" banner.
func TestRunBindErrorSynchronous(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = run(context.Background(), options{addr: ln.Addr().String(), backends: "acl-gemm"}, nil)
	if err == nil {
		t.Fatal("binding an occupied port should fail")
	}
	if !strings.Contains(err.Error(), "bind") {
		t.Errorf("bind failure should name the bind step: %v", err)
	}
}

// TestRunReportsEphemeralPort: -addr :0 must surface the real bound
// port, not the literal ":0".
func TestRunReportsEphemeralPort(t *testing.T) {
	d := startDaemon(t, options{addr: "127.0.0.1:0", backends: "acl-gemm"})
	tcp, ok := d.addr.(*net.TCPAddr)
	if !ok || tcp.Port == 0 {
		t.Fatalf("reported address %v does not carry a real port", d.addr)
	}
	status, _ := post(t, d.url("/v1/sweep"), `{"backend": "acl-gemm", "device": "HiKey 970", "network": "AlexNet", "layer": "AlexNet.L6", "hi": 8}`)
	if status != http.StatusOK {
		t.Fatalf("daemon on the reported port answered %d", status)
	}
	if err := d.shutdown(t); err != nil {
		t.Fatalf("clean shutdown: %v", err)
	}
}

// TestDaemonRestartWarmStart is the acceptance contract end to end: a
// killed-and-restarted `perfpruned -store` serves a repeated /v1/plan
// without re-invoking any backend Measure for snapshotted
// configurations.
func TestDaemonRestartWarmStart(t *testing.T) {
	cb := countingKey(t)
	store := filepath.Join(t.TempDir(), "profile.store")
	opt := options{
		addr:             "127.0.0.1:0",
		backends:         "pd-count-acl",
		store:            store,
		snapshotInterval: time.Hour, // only the shutdown flush matters here
	}
	plan := `{"backend": "pd-count-acl", "device": "HiKey 970", "network": "AlexNet"}`

	// Boot 1: cold. The plan pays the measurement bill; shutdown
	// flushes it.
	d1 := startDaemon(t, opt)
	status, cold := post(t, d1.url("/v1/plan"), plan)
	if status != http.StatusOK {
		t.Fatalf("cold plan: status %d, body %s", status, cold)
	}
	coldCalls := cb.calls.Load()
	if coldCalls == 0 {
		t.Fatal("cold plan issued no measurements")
	}
	if err := d1.shutdown(t); err != nil {
		t.Fatalf("boot 1 shutdown: %v", err)
	}
	if fi, err := os.Stat(store); err != nil || fi.Size() == 0 {
		t.Fatalf("shutdown left no snapshot: %v", err)
	}

	// Boot 2: warm. The identical plan re-invokes nothing.
	d2 := startDaemon(t, opt)
	status, warm := post(t, d2.url("/v1/plan"), plan)
	if status != http.StatusOK {
		t.Fatalf("warm plan: status %d, body %s", status, warm)
	}
	if got := cb.calls.Load(); got != coldCalls {
		t.Fatalf("restarted daemon re-invoked Measure %d times", got-coldCalls)
	}
	if string(cold) != string(warm) {
		t.Error("warm-started plan differs from the cold one")
	}

	resp, err := http.Get(d2.url("/v1/stats"))
	if err != nil {
		t.Fatal(err)
	}
	var stats service.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Store == nil || stats.Store.WarmStartEntries == 0 {
		t.Fatalf("warm-start not surfaced on /v1/stats: %+v", stats.Store)
	}
	if stats.Cache.Misses != 0 {
		t.Errorf("warm plan took %d cache misses, want 0", stats.Cache.Misses)
	}
	if stats.PlanReads.ViewServed == 0 {
		t.Errorf("warm plan bypassed the lock-free view: %+v", stats.PlanReads)
	}
	if err := d2.shutdown(t); err != nil {
		t.Fatalf("boot 2 shutdown: %v", err)
	}
}

// TestDaemonRestartDriftState: the closed-loop state survives a
// restart. Boot 1 plans AlexNet and ingests drift telemetry until a
// repair publishes plan version 2; boot 2 serves the same two-version
// history from the .drift file without any new telemetry.
func TestDaemonRestartDriftState(t *testing.T) {
	store := filepath.Join(t.TempDir(), "profile.store")
	opt := options{
		addr:             "127.0.0.1:0",
		backends:         "acl-gemm",
		store:            store,
		snapshotInterval: time.Hour,
		quietAccess:      true,
	}

	// Re-profile locally — the simulated backend is deterministic, so
	// these curves are bit-identical to the daemon's — and drift one
	// interior stair of AlexNet.L6 by a sustained 1.5x.
	lib, err := backend.Lookup("acl-gemm")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := device.ByName("HiKey 970")
	if err != nil {
		t.Fatal(err)
	}
	n, err := nets.ByName("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	np, err := core.ProfileNetwork(core.Target{Device: dev, Library: lib}, n)
	if err != nil {
		t.Fatal(err)
	}
	lp := np.Profiles["AlexNet.L6"]
	var points []service.TelemetryPoint
	for _, s := range lp.Analysis.Stairs[1 : len(lp.Analysis.Stairs)-1] {
		if s.Width() < 3 {
			continue
		}
		for r := 0; r < 3; r++ {
			for c := s.LoC; c <= s.HiC; c++ {
				points = append(points, service.TelemetryPoint{
					Layer: "AlexNet.L6", Channels: c, Ms: 1.5 * lp.Curve[c-1].Ms,
				})
			}
		}
		break
	}
	body, err := json.Marshal(service.TelemetryRequest{
		Backend: "acl-gemm", Device: "HiKey 970", Network: "AlexNet", Points: points,
	})
	if err != nil {
		t.Fatal(err)
	}
	historyURL := "/v1/plans/AlexNet/" + url.PathEscape("acl-gemm@HiKey 970")

	// Boot 1: plan (registers the key), drift, repair, flush at shutdown.
	d1 := startDaemon(t, opt)
	status, raw := post(t, d1.url("/v1/plan"), `{"backend": "acl-gemm", "device": "HiKey 970", "network": "AlexNet"}`)
	if status != http.StatusOK {
		t.Fatalf("plan: status %d, body %s", status, raw)
	}
	status, raw = post(t, d1.url("/v1/telemetry"), string(body))
	if status != http.StatusOK {
		t.Fatalf("telemetry: status %d, body %s", status, raw)
	}
	var tr service.TelemetryResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.NewVersion == nil || tr.NewVersion.Version != 2 {
		t.Fatalf("telemetry did not publish version 2: %s", raw)
	}
	if err := d1.shutdown(t); err != nil {
		t.Fatalf("boot 1 shutdown: %v", err)
	}
	if fi, err := os.Stat(store + ".drift"); err != nil || fi.Size() == 0 {
		t.Fatalf("shutdown left no drift snapshot: %v", err)
	}

	// Boot 2: the history is back, no telemetry required.
	d2 := startDaemon(t, opt)
	resp, err := http.Get(d2.url(historyURL))
	if err != nil {
		t.Fatal(err)
	}
	var hist service.PlanVersionsResponse
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted history: status %d", resp.StatusCode)
	}
	if len(hist.Versions) != 2 || hist.Versions[1].Trigger != "drift_repair" {
		t.Fatalf("restarted history = %+v, want initial + drift_repair", hist.Versions)
	}
	resp, err = http.Get(d2.url("/v1/stats"))
	if err != nil {
		t.Fatal(err)
	}
	var stats service.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Store == nil || stats.Store.DriftKeys != 1 {
		t.Fatalf("drift warm-start not surfaced on /v1/stats: %+v", stats.Store)
	}
	if err := d2.shutdown(t); err != nil {
		t.Fatalf("boot 2 shutdown: %v", err)
	}
}

// TestDebugAndMetricsEndpoints: -debug-addr mounts pprof on its own
// listener only, and the service listener serves Prometheus text on
// /metrics with request counters that move under traffic.
func TestDebugAndMetricsEndpoints(t *testing.T) {
	// Reserve an ephemeral port for the pprof listener. Closing it
	// before boot leaves a tiny reuse race, which is fine for a test.
	dl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugAddr := dl.Addr().String()
	dl.Close()

	d := startDaemon(t, options{
		addr:        "127.0.0.1:0",
		backends:    "acl-gemm",
		debugAddr:   debugAddr,
		quietAccess: true,
	})
	status, _ := post(t, d.url("/v1/sweep"), `{"backend": "acl-gemm", "device": "HiKey 970", "network": "AlexNet", "layer": "AlexNet.L6", "hi": 8}`)
	if status != http.StatusOK {
		t.Fatalf("sweep status %d", status)
	}

	resp, err := http.Get(d.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type %q", ct)
	}
	for _, want := range []string{
		`perfpruned_requests_total{code="200",route="/v1/sweep"} 1`,
		"perfpruned_cache_misses_total",
		"perfpruned_uptime_ms",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// pprof answers on the debug listener...
	resp, err = http.Get("http://" + debugAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", resp.StatusCode)
	}
	// ...and is absent from the service listener.
	resp, err = http.Get(d.url("/debug/pprof/"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("service listener serves pprof (status %d)", resp.StatusCode)
	}

	if err := d.shutdown(t); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
