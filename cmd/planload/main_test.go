package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 50}, {0.95, 100}, {0.99, 100}, {0.10, 10}, {1.0, 100},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(q=%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	if got := percentile([]float64{42}, 0.5); got != 42 {
		t.Errorf("singleton percentile = %v, want 42", got)
	}
}

func TestBuildEndpoints(t *testing.T) {
	eps, err := buildEndpoints("plan,frontier", "acl-gemm", "HiKey 970", "AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 || eps[0].Path != "/v1/plan" || eps[1].Path != "/v1/frontier" {
		t.Fatalf("endpoints = %+v", eps)
	}
	if !strings.Contains(eps[0].Body, `"network":"AlexNet"`) {
		t.Errorf("plan body %q missing the network", eps[0].Body)
	}
	if !strings.Contains(eps[1].Body, `"max_points":16`) {
		t.Errorf("frontier body %q missing max_points", eps[1].Body)
	}
	if _, err := buildEndpoints("plan,bogus", "b", "d", "n"); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := buildEndpoints(" , ", "b", "d", "n"); err == nil {
		t.Error("empty mix accepted")
	}
}

// loadServer fakes a daemon: /v1/plan always succeeds, /v1/frontier
// fails every failEvery-th request.
func loadServer(t *testing.T, failEvery int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var frontierHits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck
	})
	mux.HandleFunc("POST /v1/frontier", func(w http.ResponseWriter, r *http.Request) {
		n := frontierHits.Add(1)
		if failEvery > 0 && n%failEvery == 0 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &frontierHits
}

func TestRunLoadReportsMixAndErrors(t *testing.T) {
	ts, frontierHits := loadServer(t, 2) // every 2nd frontier request fails
	cfg := config{
		base:        ts.URL,
		duration:    300 * time.Millisecond,
		concurrency: 3,
		timeout:     5 * time.Second,
	}
	var err error
	cfg.endpoints, err = buildEndpoints("plan,frontier", "b", "d", "n")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if rep.Concurrency != 3 {
		t.Errorf("concurrency = %d", rep.Concurrency)
	}
	plan, frontier := rep.PerEndpoint["/v1/plan"], rep.PerEndpoint["/v1/frontier"]
	if plan.Requests == 0 || frontier.Requests == 0 {
		t.Fatalf("mix not exercised: %+v", rep.PerEndpoint)
	}
	if plan.Errors != 0 {
		t.Errorf("plan endpoint recorded %d errors, want 0", plan.Errors)
	}
	if frontier.Errors == 0 {
		t.Error("injected frontier failures not recorded")
	}
	if rep.Errors != frontier.Errors {
		t.Errorf("total errors %d != frontier errors %d", rep.Errors, frontier.Errors)
	}
	wantRate := float64(rep.Errors) / float64(rep.Requests)
	if rep.ErrorRate != wantRate {
		t.Errorf("error rate %v, want %v", rep.ErrorRate, wantRate)
	}
	if rep.P50Ms <= 0 || rep.P95Ms < rep.P50Ms || rep.P99Ms < rep.P95Ms {
		t.Errorf("percentiles not ordered: p50 %v p95 %v p99 %v", rep.P50Ms, rep.P95Ms, rep.P99Ms)
	}
	if frontierHits.Load() == 0 {
		t.Error("server never saw frontier traffic")
	}
}

// telemetryServer fakes the daemon surface prepTelemetry touches:
// plan registration, the network inventory and the curve prefetch,
// plus a counting /v1/telemetry sink for the interleaved load.
func telemetryServer(t *testing.T) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var planHits, telemetryHits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		planHits.Add(1)
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck
	})
	mux.HandleFunc("GET /v1/networks", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `[{"name":"AlexNet","layers":[
			{"label":"AlexNet.L0","channels":96,"unique":true},
			{"label":"AlexNet.L6","channels":384,"unique":true},
			{"label":"AlexNet.L4","channels":384,"unique":false}]}]`)
	})
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		if planHits.Load() == 0 {
			// The key must be registered before telemetry flows; the
			// prefetch ordering is part of the contract.
			http.Error(w, "sweep before plan", http.StatusTeapot)
			return
		}
		fmt.Fprint(w, `{"points":[{"channels":1,"ms":1.5},{"channels":2,"ms":2.25}]}`)
	})
	mux.HandleFunc("POST /v1/telemetry", func(w http.ResponseWriter, r *http.Request) {
		telemetryHits.Add(1)
		w.Write([]byte(`{"accepted":2}`)) //nolint:errcheck
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &planHits, &telemetryHits
}

// TestPrepTelemetry: the prep registers the plan first, picks the
// widest unique layer, and bakes the prefetched curve into the burst
// body verbatim.
func TestPrepTelemetry(t *testing.T) {
	ts, planHits, _ := telemetryServer(t)
	client := &http.Client{Timeout: 5 * time.Second}
	ep, err := prepTelemetry(context.Background(), client, ts.URL, "acl-gemm", "HiKey 970", "AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	if planHits.Load() != 1 {
		t.Errorf("prep issued %d plans, want exactly 1 (synchronous registration)", planHits.Load())
	}
	if ep.Path != "/v1/telemetry" {
		t.Errorf("endpoint path %q", ep.Path)
	}
	for _, want := range []string{
		`"layer":"AlexNet.L6"`,  // widest unique layer, not the non-unique 384 or the narrow 96
		`"ms":1.5`, `"ms":2.25`, // the stored curve verbatim — healthy telemetry
		`"backend":"acl-gemm"`,
	} {
		if !strings.Contains(ep.Body, want) {
			t.Errorf("burst body missing %s:\n%s", want, ep.Body)
		}
	}
	if strings.Contains(ep.Body, "AlexNet.L0") {
		t.Error("burst reports the narrow layer")
	}

	// A network with no unique layer is a prep error, not a silent
	// telemetry-free run.
	if _, err := prepTelemetry(context.Background(), client, ts.URL, "b", "d", "NoSuchNet"); err == nil {
		t.Error("unknown network accepted")
	}
}

// TestRunLoadTelemetryInterleave: with -telemetry-rate the rotation
// carries /v1/telemetry traffic and the report breaks it out.
func TestRunLoadTelemetryInterleave(t *testing.T) {
	ts, _, telemetryHits := telemetryServer(t)
	client := &http.Client{Timeout: 5 * time.Second}
	tep, err := prepTelemetry(context.Background(), client, ts.URL, "acl-gemm", "HiKey 970", "AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config{
		base:           ts.URL,
		duration:       300 * time.Millisecond,
		concurrency:    2,
		timeout:        5 * time.Second,
		telemetryEvery: 3,
		telemetry:      tep,
	}
	cfg.endpoints, err = buildEndpoints("plan", "acl-gemm", "HiKey 970", "AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tstats := rep.PerEndpoint["/v1/telemetry"]
	pstats := rep.PerEndpoint["/v1/plan"]
	if tstats.Requests == 0 || pstats.Requests == 0 {
		t.Fatalf("mix not interleaved: %+v", rep.PerEndpoint)
	}
	if tstats.Errors != 0 {
		t.Errorf("telemetry bursts errored %d times", tstats.Errors)
	}
	if telemetryHits.Load() == 0 {
		t.Error("server never saw telemetry")
	}
	// Roughly one burst per telemetryEvery requests.
	if ratio := float64(tstats.Requests) / float64(rep.Requests); ratio < 0.15 || ratio > 0.55 {
		t.Errorf("telemetry fraction %.2f far from 1/3 (%d of %d)", ratio, tstats.Requests, rep.Requests)
	}
}

func TestRunLoadDaemonDown(t *testing.T) {
	cfg := config{
		base:        "http://127.0.0.1:1", // nothing listens here
		duration:    150 * time.Millisecond,
		concurrency: 2,
		timeout:     time.Second,
	}
	cfg.endpoints, _ = buildEndpoints("plan", "b", "d", "n")
	rep, err := runLoad(context.Background(), cfg)
	if err != nil {
		t.Fatalf("connection refusals are errors in the report, not harness failures: %v", err)
	}
	if rep.ErrorRate != 1 {
		t.Errorf("error rate against a dead daemon = %v, want 1", rep.ErrorRate)
	}
}

func TestCheckSLOs(t *testing.T) {
	rep := Report{P50Ms: 10, P95Ms: 80, P99Ms: 200, Errors: 3, Requests: 100, ErrorRate: 0.03}

	// All gates off: no violations.
	if v := checkSLOs(rep, config{sloErrorRate: -1}); len(v) != 0 {
		t.Fatalf("ungated run violated: %v", v)
	}
	// Generous gates pass.
	pass := config{sloP50: time.Second, sloP95: time.Second, sloP99: time.Second, sloErrorRate: 0.5}
	if v := checkSLOs(rep, pass); len(v) != 0 {
		t.Fatalf("generous gates violated: %v", v)
	}
	// The p99 gate (the acceptance criterion) trips.
	tight := config{sloP99: 100 * time.Millisecond, sloErrorRate: -1}
	v := checkSLOs(rep, tight)
	if len(v) != 1 || !strings.Contains(v[0], "p99") {
		t.Fatalf("p99 violation not reported: %v", v)
	}
	// The error-rate gate trips, including at an explicit 0.
	if v := checkSLOs(rep, config{sloErrorRate: 0.01}); len(v) != 1 {
		t.Fatalf("error-rate violation not reported: %v", v)
	}
	if v := checkSLOs(rep, config{sloErrorRate: 0}); len(v) != 1 {
		t.Fatalf("zero-tolerance error gate did not trip: %v", v)
	}
	clean := Report{P99Ms: 5, Requests: 10}
	if v := checkSLOs(clean, config{sloP99: 100 * time.Millisecond, sloErrorRate: 0}); len(v) != 0 {
		t.Fatalf("clean run violated: %v", v)
	}
}

// TestEndToEndSLOGate: the full pipeline against a fake slow daemon —
// the report carries all three percentiles and the p99 SLO check
// produces the violation main exits non-zero on.
func TestEndToEndSLOGate(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(20 * time.Millisecond)
		w.Write([]byte(`{}`)) //nolint:errcheck
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg := config{
		base:        ts.URL,
		duration:    250 * time.Millisecond,
		concurrency: 2,
		timeout:     time.Second,
		sloP99:      time.Millisecond, // guaranteed violation
	}
	cfg.endpoints, _ = buildEndpoints("plan", "b", "d", "n")
	rep, err := runLoad(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.P99Ms < 20 {
		t.Fatalf("p99 %vms below the injected 20ms floor", rep.P99Ms)
	}
	v := checkSLOs(rep, cfg)
	if len(v) != 1 || !strings.Contains(v[0], "p99") {
		t.Fatalf("p99 gate did not trip: %v", v)
	}
}

func TestParsePromSumsLabelSets(t *testing.T) {
	text := `# HELP perfpruned_requests_total served requests
# TYPE perfpruned_requests_total counter
perfpruned_requests_total{code="200",route="/v1/plan"} 7
perfpruned_requests_total{code="200",route="/v1/stats"} 2
perfpruned_requests_total{code="404",route="unmatched"} 1
perfpruned_cache_hits_total 41

perfpruned_request_duration_ms_bucket{route="/v1/plan",le="+Inf"} 7
perfpruned_uptime_ms 1234.5 1700000000000
`
	got, err := parseProm(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"perfpruned_requests_total":             10, // summed across label sets
		"perfpruned_cache_hits_total":           41,
		"perfpruned_request_duration_ms_bucket": 7,
		"perfpruned_uptime_ms":                  1234.5, // trailing timestamp dropped
	}
	for name, want := range checks {
		if got[name] != want {
			t.Errorf("%s = %v, want %v", name, got[name], want)
		}
	}
}

func TestParsePromMalformed(t *testing.T) {
	for _, bad := range []string{
		"perfpruned_requests_total",                  // no value
		`perfpruned_requests_total{route="/x" 7`,     // unclosed label set
		`perfpruned_requests_total{route="/x"} many`, // non-numeric value
	} {
		if _, err := parseProm(strings.NewReader(bad)); err == nil {
			t.Errorf("parseProm(%q) accepted a malformed line", bad)
		}
	}
}

func TestLatencyHistogramShape(t *testing.T) {
	got := latencyHistogram([]float64{0.2, 3, 3, 40, 99999})
	if len(got) == 0 {
		t.Fatal("empty histogram")
	}
	last := got[len(got)-1]
	if last.Le != "+Inf" {
		t.Fatalf("last bucket le = %q, want +Inf", last.Le)
	}
	if last.CumulativeCount != 5 {
		t.Errorf("+Inf cumulative = %d, want 5", last.CumulativeCount)
	}
	// Counts are cumulative and monotone.
	var prev uint64
	for _, b := range got {
		if b.CumulativeCount < prev {
			t.Fatalf("bucket le=%s count %d below previous %d", b.Le, b.CumulativeCount, prev)
		}
		prev = b.CumulativeCount
	}
	// The report must round-trip through JSON (+Inf is a string).
	if _, err := json.Marshal(Report{Histogram: got}); err != nil {
		t.Fatalf("histogram does not marshal: %v", err)
	}
}

// TestScrapeMetrics drives the scraper against a canned exposition.
func TestScrapeMetrics(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `perfpruned_requests_total{code="200",route="/v1/plan"} 8`)
		fmt.Fprintln(w, `perfpruned_cache_hits_total 30`)
		fmt.Fprintln(w, `perfpruned_cache_misses_total 10`)
	}))
	defer ts.Close()
	s, err := scrapeMetrics(ts.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if s.RequestsTotal != 8 || s.CacheHits != 30 || s.CacheMisses != 10 {
		t.Fatalf("scraped %+v", s)
	}
	if s.CacheHitRate != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", s.CacheHitRate)
	}

	down := httptest.NewServer(http.NotFoundHandler())
	defer down.Close()
	if _, err := scrapeMetrics(down.URL, time.Second); err == nil {
		t.Error("404 exposition should fail the scrape")
	}
}
