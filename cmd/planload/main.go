// Command planload drives a running perfpruned daemon with a sustained
// stream of /v1/plan and /v1/frontier requests and reports what the
// paper's "planning as a service" tier actually costs to serve: p50 /
// p95 / p99 latency and error rate at a configured concurrency. SLO
// flags turn the report into a gate — any violated objective makes the
// process exit non-zero, which is what CI runs against a warm-started
// daemon (generous thresholds: an existence gate for the serving path,
// not a perf gate on shared runners).
//
// Usage:
//
//	planload -addr http://127.0.0.1:7070 -duration 10s -concurrency 8 \
//	         -network AlexNet -backend acl-gemm -device "HiKey 970" \
//	         -slo-p99 500ms -slo-error-rate 0.01
//
// The first requests are the most expensive (they pay the daemon's
// measurement bill; everything after coalesces on its cache), so the
// p99 of a cold daemon is dominated by cache fill — load-test a
// warm-started daemon (-store) to measure steady-state serving.
//
// With -telemetry-rate N, every Nth request becomes a /v1/telemetry
// burst that echoes the daemon's own stored curve for the network's
// widest layer — the closed loop's ingestion path under load, without
// drifting the fleet state the test runs against.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"perfprune/internal/obs"
)

// config is one load run's shape.
type config struct {
	base        string        // daemon base URL
	duration    time.Duration // how long to keep the load up
	concurrency int           // concurrent request loops
	timeout     time.Duration // per-request timeout
	endpoints   []endpoint    // round-robined request mix

	// telemetryEvery > 0 replaces every Nth request of the rotation
	// with a POST /v1/telemetry burst (the telemetry endpoint), so the
	// load includes the closed loop's ingestion path.
	telemetryEvery int
	telemetry      endpoint

	sloP50, sloP95, sloP99 time.Duration // 0 = ungated
	sloErrorRate           float64       // < 0 = ungated
}

// endpoint is one (path, body) the workers cycle through.
type endpoint struct {
	Path string
	Body string
}

// sample is one completed request.
type sample struct {
	endpoint string
	ms       float64
	ok       bool
}

// EndpointStats is the per-endpoint slice of the report.
type EndpointStats struct {
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
}

// HistogramBucket is one cumulative latency bucket of the report
// (Prometheus le semantics; the last bucket is "+Inf").
type HistogramBucket struct {
	Le              string `json:"le"`
	CumulativeCount uint64 `json:"cumulative_count"`
}

// ServerStats is what a -metrics-url scrape of the daemon's /metrics
// said after the run: the server-side view of the load (how much of it
// the measurement cache absorbed).
type ServerStats struct {
	RequestsTotal float64 `json:"requests_total"`
	CacheHits     float64 `json:"cache_hits"`
	CacheMisses   float64 `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	// PlanViewServed counts plans answered entirely from the lock-free
	// cache view — the path a warmed replica is expected to live on.
	PlanViewServed float64 `json:"plan_view_served"`
	// Cluster series: present when the scraped daemon exports them
	// (every daemon does; they stay zero outside a multi-replica run).
	ClusterPulls        float64 `json:"cluster_pulls,omitempty"`
	ClusterImported     float64 `json:"cluster_entries_imported,omitempty"`
	ClusterForwards     float64 `json:"cluster_forwards,omitempty"`
	ClusterPeersHealthy float64 `json:"cluster_peers_healthy,omitempty"`
}

// Report is what one load run measured. Latency percentiles are over
// successful requests only — failures are scored by the error-rate
// gate, not blended into the latency distribution.
type Report struct {
	DurationSec float64                  `json:"duration_sec"`
	Concurrency int                      `json:"concurrency"`
	Requests    int                      `json:"requests"`
	Errors      int                      `json:"errors"`
	ErrorRate   float64                  `json:"error_rate"`
	RPS         float64                  `json:"rps"`
	P50Ms       float64                  `json:"p50_ms"`
	P95Ms       float64                  `json:"p95_ms"`
	P99Ms       float64                  `json:"p99_ms"`
	PerEndpoint map[string]EndpointStats `json:"per_endpoint"`
	// Histogram is the full latency distribution of successful requests
	// over the standard bucket layout — the shape the nearest-rank
	// percentiles above summarize.
	Histogram []HistogramBucket `json:"histogram,omitempty"`
	// Server is the daemon's /metrics view of the run (-metrics-url).
	Server *ServerStats `json:"server,omitempty"`
}

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:7070", "perfpruned base URL")
		duration    = flag.Duration("duration", 10*time.Second, "how long to sustain the load")
		concurrency = flag.Int("concurrency", 4, "concurrent request loops")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request timeout (a timeout counts as an error)")
		network     = flag.String("network", "AlexNet", "network to plan")
		backendKey  = flag.String("backend", "acl-gemm", "backend registry key to plan against")
		deviceName  = flag.String("device", "HiKey 970", "target board")
		endpoints   = flag.String("endpoints", "plan,frontier", "comma-separated request mix: plan, frontier")
		telemetry   = flag.Int("telemetry-rate", 0,
			"interleave one /v1/telemetry burst per this many requests (0 = none); bursts echo the daemon's own stored curve, exercising drift classification without repairing anything")
		jsonOut    = flag.Bool("json", false, "emit the report as JSON instead of text")
		metricsURL = flag.String("metrics-url", "",
			"scrape this /metrics URL after the run and fold the server-side cache hit rate into the report (empty = skip)")

		sloP50    = flag.Duration("slo-p50", 0, "fail if p50 latency exceeds this (0 = ungated)")
		sloP95    = flag.Duration("slo-p95", 0, "fail if p95 latency exceeds this (0 = ungated)")
		sloP99    = flag.Duration("slo-p99", 0, "fail if p99 latency exceeds this (0 = ungated)")
		sloErrors = flag.Float64("slo-error-rate", -1, "fail if the error-rate fraction exceeds this (< 0 = ungated)")
	)
	flag.Parse()

	cfg := config{
		base:         strings.TrimRight(*addr, "/"),
		duration:     *duration,
		concurrency:  *concurrency,
		timeout:      *timeout,
		sloP50:       *sloP50,
		sloP95:       *sloP95,
		sloP99:       *sloP99,
		sloErrorRate: *sloErrors,
	}
	var err error
	cfg.endpoints, err = buildEndpoints(*endpoints, *backendKey, *deviceName, *network)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planload: %v\n", err)
		os.Exit(2)
	}
	if *telemetry > 0 {
		cfg.telemetryEvery = *telemetry
		cfg.telemetry, err = prepTelemetry(context.Background(),
			&http.Client{Timeout: cfg.timeout}, cfg.base, *backendKey, *deviceName, *network)
		if err != nil {
			fmt.Fprintf(os.Stderr, "planload: telemetry prep: %v\n", err)
			os.Exit(2)
		}
	}

	rep, err := runLoad(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planload: %v\n", err)
		os.Exit(2)
	}
	if *metricsURL != "" {
		srv, err := scrapeMetrics(*metricsURL, cfg.timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "planload: metrics scrape: %v\n", err)
			os.Exit(2)
		}
		rep.Server = srv
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep) //nolint:errcheck
	} else {
		printReport(os.Stdout, rep)
	}
	if violations := checkSLOs(rep, cfg); len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "planload: %d SLO violation(s):\n  %s\n",
			len(violations), strings.Join(violations, "\n  "))
		os.Exit(1)
	}
}

// buildEndpoints turns the -endpoints mix into request templates.
func buildEndpoints(mix, backendKey, deviceName, network string) ([]endpoint, error) {
	planBody, err := json.Marshal(map[string]any{
		"backend": backendKey, "device": deviceName, "network": network,
	})
	if err != nil {
		return nil, err
	}
	frontierBody, err := json.Marshal(map[string]any{
		"backend": backendKey, "device": deviceName, "network": network, "max_points": 16,
	})
	if err != nil {
		return nil, err
	}
	var out []endpoint
	for _, name := range strings.Split(mix, ",") {
		switch strings.TrimSpace(name) {
		case "plan":
			out = append(out, endpoint{Path: "/v1/plan", Body: string(planBody)})
		case "frontier":
			out = append(out, endpoint{Path: "/v1/frontier", Body: string(frontierBody)})
		case "":
		default:
			return nil, fmt.Errorf("unknown endpoint %q (have: plan, frontier)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty endpoint mix")
	}
	return out, nil
}

// prepTelemetry builds the /v1/telemetry burst the workers interleave.
// Telemetry for a never-planned key is a 422, so the first /v1/plan is
// issued synchronously here (registering the key with the daemon's
// drift monitor); the points then echo the daemon's own stored curve —
// fetched through /v1/sweep, which the plan just made a cache hit — so
// every burst classifies healthy and the load test measures ingestion
// without mutating the fleet state it runs against.
func prepTelemetry(ctx context.Context, client *http.Client, base, backendKey, deviceName, network string) (endpoint, error) {
	planBody, err := json.Marshal(map[string]any{
		"backend": backendKey, "device": deviceName, "network": network,
	})
	if err != nil {
		return endpoint{}, err
	}
	if err := postJSON(ctx, client, base+"/v1/plan", string(planBody), nil); err != nil {
		return endpoint{}, fmt.Errorf("registering plan: %w", err)
	}

	// Pick the widest unique layer — the most telemetry per burst.
	var networks []struct {
		Name   string `json:"name"`
		Layers []struct {
			Label    string `json:"label"`
			Channels int    `json:"channels"`
			Unique   bool   `json:"unique"`
		} `json:"layers"`
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/networks", nil)
	if err != nil {
		return endpoint{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return endpoint{}, err
	}
	err = json.NewDecoder(resp.Body).Decode(&networks)
	resp.Body.Close()
	if err != nil {
		return endpoint{}, fmt.Errorf("GET /v1/networks: %w", err)
	}
	layer := ""
	width := 0
	for _, n := range networks {
		if n.Name != network {
			continue
		}
		for _, l := range n.Layers {
			if l.Unique && l.Channels > width {
				layer, width = l.Label, l.Channels
			}
		}
	}
	if layer == "" {
		return endpoint{}, fmt.Errorf("network %q has no unique layer to report telemetry for", network)
	}

	sweepBody, err := json.Marshal(map[string]any{
		"backend": backendKey, "device": deviceName, "network": network, "layer": layer,
	})
	if err != nil {
		return endpoint{}, err
	}
	var sweep struct {
		Points []struct {
			Channels int     `json:"channels"`
			Ms       float64 `json:"ms"`
		} `json:"points"`
	}
	if err := postJSON(ctx, client, base+"/v1/sweep", string(sweepBody), &sweep); err != nil {
		return endpoint{}, fmt.Errorf("prefetching %s curve: %w", layer, err)
	}
	if len(sweep.Points) == 0 {
		return endpoint{}, fmt.Errorf("sweep of %s returned no points", layer)
	}
	points := make([]map[string]any, 0, len(sweep.Points))
	for _, p := range sweep.Points {
		points = append(points, map[string]any{"layer": layer, "channels": p.Channels, "ms": p.Ms})
	}
	body, err := json.Marshal(map[string]any{
		"backend": backendKey, "device": deviceName, "network": network, "points": points,
	})
	if err != nil {
		return endpoint{}, err
	}
	return endpoint{Path: "/v1/telemetry", Body: string(body)}, nil
}

// postJSON posts a body and decodes the 200 response into out (out may
// be nil to discard it).
func postJSON(ctx context.Context, client *http.Client, url, body string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, strings.TrimSpace(string(raw)))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// runLoad sustains the configured load until the duration elapses and
// aggregates every completed request.
func runLoad(ctx context.Context, cfg config) (Report, error) {
	if cfg.concurrency < 1 {
		return Report{}, fmt.Errorf("concurrency %d must be >= 1", cfg.concurrency)
	}
	if cfg.duration <= 0 {
		return Report{}, fmt.Errorf("duration %v must be positive", cfg.duration)
	}
	client := &http.Client{Timeout: cfg.timeout}
	ctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()

	perWorker := make([][]sample, cfg.concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				ep := cfg.endpoints[(w+i)%len(cfg.endpoints)]
				if cfg.telemetryEvery > 0 && (w+i)%cfg.telemetryEvery == 0 {
					ep = cfg.telemetry
				}
				s := issue(ctx, client, cfg.base, ep)
				if ctx.Err() != nil && !s.ok {
					// The deadline cut this request off mid-flight; it
					// measured the harness, not the daemon.
					break
				}
				perWorker[w] = append(perWorker[w], s)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []sample
	for _, ws := range perWorker {
		all = append(all, ws...)
	}
	if len(all) == 0 {
		return Report{}, fmt.Errorf("no requests completed within %v — is the daemon up at %s?", cfg.duration, cfg.base)
	}
	return aggregate(all, elapsed, cfg.concurrency), nil
}

// issue sends one request and scores it.
func issue(ctx context.Context, client *http.Client, base string, ep endpoint) sample {
	s := sample{endpoint: ep.Path}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+ep.Path, strings.NewReader(ep.Body))
	if err != nil {
		return s
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := client.Do(req)
	s.ms = float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		return s
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	resp.Body.Close()
	s.ok = resp.StatusCode == http.StatusOK
	return s
}

// aggregate folds samples into the report.
func aggregate(all []sample, elapsed time.Duration, concurrency int) Report {
	rep := Report{
		DurationSec: elapsed.Seconds(),
		Concurrency: concurrency,
		Requests:    len(all),
		PerEndpoint: make(map[string]EndpointStats),
	}
	var okMs []float64
	for _, s := range all {
		es := rep.PerEndpoint[s.endpoint]
		es.Requests++
		if s.ok {
			okMs = append(okMs, s.ms)
		} else {
			es.Errors++
			rep.Errors++
		}
		rep.PerEndpoint[s.endpoint] = es
	}
	rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
	if elapsed > 0 {
		rep.RPS = float64(rep.Requests) / elapsed.Seconds()
	}
	sort.Float64s(okMs)
	rep.P50Ms = percentile(okMs, 0.50)
	rep.P95Ms = percentile(okMs, 0.95)
	rep.P99Ms = percentile(okMs, 0.99)
	rep.Histogram = latencyHistogram(okMs)
	return rep
}

// latencyHistogram folds the successful latencies into the standard
// fixed-bucket layout, so the report carries the full distribution and
// not just three point summaries.
func latencyHistogram(okMs []float64) []HistogramBucket {
	h := obs.NewHistogram(obs.LatencyBuckets)
	for _, ms := range okMs {
		h.Observe(ms)
	}
	bounds, cum := h.Buckets()
	out := make([]HistogramBucket, len(bounds))
	for i, b := range bounds {
		le := "+Inf"
		if !math.IsInf(b, 1) {
			le = strconv.FormatFloat(b, 'g', -1, 64)
		}
		out[i] = HistogramBucket{Le: le, CumulativeCount: cum[i]}
	}
	return out
}

// scrapeMetrics fetches a Prometheus text exposition and extracts the
// server-side series the report cares about.
func scrapeMetrics(url string, timeout time.Duration) (*ServerStats, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	families, err := parseProm(resp.Body)
	if err != nil {
		return nil, err
	}
	s := &ServerStats{
		RequestsTotal:       families["perfpruned_requests_total"],
		CacheHits:           families["perfpruned_cache_hits_total"],
		CacheMisses:         families["perfpruned_cache_misses_total"],
		PlanViewServed:      families["perfpruned_plan_view_served_total"],
		ClusterPulls:        families["perfpruned_cluster_snapshot_pulls_total"],
		ClusterImported:     families["perfpruned_cluster_entries_imported_total"],
		ClusterForwards:     families["perfpruned_cluster_forwards_total"],
		ClusterPeersHealthy: families["perfpruned_cluster_peers_healthy"],
	}
	if total := s.CacheHits + s.CacheMisses; total > 0 {
		s.CacheHitRate = s.CacheHits / total
	}
	return s, nil
}

// parseProm reads a Prometheus text exposition and sums sample values
// per metric name (label sets collapse, so a per-route counter family
// comes back as its total). Comment and blank lines are skipped;
// malformed sample lines are errors.
func parseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value  |  name value
		name := line
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				return nil, fmt.Errorf("malformed sample line %q", line)
			}
			rest = strings.TrimSpace(line[j+1:])
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
			rest = strings.TrimSpace(line[i+1:])
		} else {
			return nil, fmt.Errorf("malformed sample line %q", line)
		}
		// A timestamp may trail the value; take the first field.
		if i := strings.IndexByte(rest, ' '); i >= 0 {
			rest = rest[:i]
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, fmt.Errorf("sample %s: bad value %q", name, rest)
		}
		out[name] += v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// percentile returns the q-quantile of sorted (nearest-rank method);
// 0 for an empty slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkSLOs scores the report against the configured objectives.
func checkSLOs(rep Report, cfg config) []string {
	var out []string
	gate := func(name string, gotMs float64, slo time.Duration) {
		if slo <= 0 {
			return
		}
		limitMs := float64(slo) / float64(time.Millisecond)
		if gotMs > limitMs {
			out = append(out, fmt.Sprintf("%s %.1fms exceeds SLO %.1fms", name, gotMs, limitMs))
		}
	}
	gate("p50", rep.P50Ms, cfg.sloP50)
	gate("p95", rep.P95Ms, cfg.sloP95)
	gate("p99", rep.P99Ms, cfg.sloP99)
	if cfg.sloErrorRate >= 0 && rep.ErrorRate > cfg.sloErrorRate {
		out = append(out, fmt.Sprintf("error rate %.3f exceeds SLO %.3f (%d/%d failed)",
			rep.ErrorRate, cfg.sloErrorRate, rep.Errors, rep.Requests))
	}
	return out
}

// printReport renders the text report.
func printReport(w io.Writer, rep Report) {
	fmt.Fprintf(w, "planload: %d requests in %.1fs (%.1f req/s, concurrency %d)\n",
		rep.Requests, rep.DurationSec, rep.RPS, rep.Concurrency)
	fmt.Fprintf(w, "  latency  p50 %.1fms  p95 %.1fms  p99 %.1fms\n", rep.P50Ms, rep.P95Ms, rep.P99Ms)
	fmt.Fprintf(w, "  errors   %d (%.3f)\n", rep.Errors, rep.ErrorRate)
	paths := make([]string, 0, len(rep.PerEndpoint))
	for p := range rep.PerEndpoint {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		es := rep.PerEndpoint[p]
		fmt.Fprintf(w, "  %-14s %d requests, %d errors\n", p, es.Requests, es.Errors)
	}
	if rep.Server != nil {
		fmt.Fprintf(w, "  server   %.0f requests seen, cache hit rate %.3f (%.0f hits / %.0f misses), %.0f plans view-served\n",
			rep.Server.RequestsTotal, rep.Server.CacheHitRate, rep.Server.CacheHits, rep.Server.CacheMisses,
			rep.Server.PlanViewServed)
		if rep.Server.ClusterPulls > 0 || rep.Server.ClusterImported > 0 || rep.Server.ClusterPeersHealthy > 0 {
			fmt.Fprintf(w, "  cluster  %.0f snapshot pulls, %.0f entries imported, %.0f forwards, %.0f healthy peers\n",
				rep.Server.ClusterPulls, rep.Server.ClusterImported, rep.Server.ClusterForwards,
				rep.Server.ClusterPeersHealthy)
		}
	}
}
