package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
BenchmarkFig01-8         	       3	  52034812 ns/op	         1.900 max_slowdown_x
BenchmarkFig01-8         	       3	  49012345 ns/op	         1.900 max_slowdown_x
BenchmarkFig01-8         	       3	  50999999 ns/op	         1.900 max_slowdown_x
BenchmarkProbeVsSweep/cuDNN-8 	       1	   4705692 ns/op	      1936 points_avoided
BenchmarkProbeVsSweep/cuDNN-8 	       1	   4605692 ns/op	      1936 points_avoided
PASS
ok  	perfprune	0.398s
`

func TestParseScoresMinimum(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(results), results)
	}
	// Sorted by name.
	if results[0].Name != "Fig01" || results[1].Name != "ProbeVsSweep/cuDNN" {
		t.Fatalf("names = %s, %s", results[0].Name, results[1].Name)
	}
	if results[0].NsPerOp != 49012345 || results[0].Runs != 3 {
		t.Errorf("Fig01 = %+v, want min 49012345 over 3 runs", results[0])
	}
	if results[1].NsPerOp != 4605692 || results[1].Runs != 2 {
		t.Errorf("cuDNN = %+v, want min 4605692 over 2 runs", results[1])
	}
}

func TestGateFlagsRegressionsOnly(t *testing.T) {
	baseline := []Result{
		{Name: "Fast", NsPerOp: 100},
		{Name: "Slow", NsPerOp: 100},
		{Name: "Gone", NsPerOp: 100},
	}
	current := []Result{
		{Name: "Fast", NsPerOp: 124}, // within 25%
		{Name: "Slow", NsPerOp: 126}, // beyond 25%
		{Name: "New", NsPerOp: 1},    // untracked
	}
	failures, notes := Gate(baseline, current, 0.25, 0)
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want the Slow regression and the Gone disappearance", failures)
	}
	if !strings.Contains(failures[0], "Gone") && !strings.Contains(failures[1], "Gone") {
		t.Errorf("missing-tracked-benchmark failure absent: %v", failures)
	}
	found := false
	for _, f := range failures {
		if strings.Contains(f, "Slow") && strings.Contains(f, "+26.0%") {
			found = true
		}
	}
	if !found {
		t.Errorf("Slow regression not reported with its percentage: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "New") {
		t.Errorf("notes = %v, want one note about New", notes)
	}

	// An improvement is never a failure.
	failures, _ = Gate([]Result{{Name: "Fast", NsPerOp: 100}}, []Result{{Name: "Fast", NsPerOp: 10}}, 0.25, 0)
	if len(failures) != 0 {
		t.Errorf("improvement flagged: %v", failures)
	}
}

func TestGateFloorDemotesShortBenchmarks(t *testing.T) {
	baseline := []Result{
		{Name: "Micro", NsPerOp: 9_000},     // below the floor: noise
		{Name: "Macro", NsPerOp: 9_000_000}, // above: gated
	}
	current := []Result{
		{Name: "Micro", NsPerOp: 30_000},     // 3.3x "regression" in scheduler noise
		{Name: "Macro", NsPerOp: 12_000_000}, // real 33% regression
	}
	failures, notes := Gate(baseline, current, 0.25, 100_000)
	if len(failures) != 1 || !strings.Contains(failures[0], "Macro") {
		t.Errorf("failures = %v, want only the Macro regression", failures)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "Micro") && strings.Contains(n, "informational") {
			found = true
		}
	}
	if !found {
		t.Errorf("sub-floor regression not noted: %v", notes)
	}
}

func TestParseBenchmemColumns(t *testing.T) {
	input := `goos: linux
BenchmarkInferVGG16RealGEMM-8   3   44863602 ns/op   6.401 speedup_x   0 B/op   0 allocs/op
BenchmarkInferVGG16RealGEMM-8   3   44000000 ns/op   6.500 speedup_x   16 B/op   1 allocs/op
BenchmarkFig01-8                3   52034812 ns/op   1.900 max_slowdown_x
`
	results, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	vgg := byName["InferVGG16RealGEMM"]
	if vgg.NsPerOp != 44000000 {
		t.Errorf("ns/op = %v, want min 44000000", vgg.NsPerOp)
	}
	// A measured 0 B/op is a genuine zero-allocation result.
	if vgg.BytesPerOp != 0 || vgg.AllocsPerOp != 0 {
		t.Errorf("benchmem = %v B/op %v allocs/op, want min 0/0", vgg.BytesPerOp, vgg.AllocsPerOp)
	}
	// Runs without -benchmem columns record -1 ("not measured"), so the
	// trajectory artifact cannot read as a zero-allocation claim.
	if fig := byName["Fig01"]; fig.BytesPerOp != -1 || fig.AllocsPerOp != -1 {
		t.Errorf("missing benchmem columns parsed as %v/%v, want -1/-1", fig.BytesPerOp, fig.AllocsPerOp)
	}
}

// TestParseBenchmemMixedRuns: the minimum is taken over measured runs
// only — an unmeasured run must neither pin the column at a bogus 0
// nor erase a measured value, whichever order the runs arrive in.
func TestParseBenchmemMixedRuns(t *testing.T) {
	input := `goos: linux
BenchmarkMixed-8   3   50000000 ns/op
BenchmarkMixed-8   3   51000000 ns/op   128 B/op   2 allocs/op
BenchmarkMixed-8   3   52000000 ns/op   64 B/op   1 allocs/op
BenchmarkNever-8   3   10000000 ns/op
BenchmarkNever-8   3   11000000 ns/op
`
	results, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	mixed := byName["Mixed"]
	if mixed.NsPerOp != 50000000 || mixed.Runs != 3 {
		t.Errorf("Mixed = %+v, want min ns over 3 runs", mixed)
	}
	if mixed.BytesPerOp != 64 || mixed.AllocsPerOp != 1 {
		t.Errorf("Mixed benchmem = %v/%v, want 64/1 (min over the measured runs)", mixed.BytesPerOp, mixed.AllocsPerOp)
	}
	if never := byName["Never"]; never.BytesPerOp != -1 || never.AllocsPerOp != -1 {
		t.Errorf("Never benchmem = %v/%v, want -1/-1", never.BytesPerOp, never.AllocsPerOp)
	}
}
