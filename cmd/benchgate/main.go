// Command benchgate is the CI bench-regression gate: it parses `go
// test -bench` output, compares each benchmark's best ns/op against a
// committed baseline JSON, and fails when any tracked benchmark
// regresses beyond the tolerance. It also emits the freshly measured
// results, so every CI run extends the benchmark trajectory and an
// intentional change is recorded by committing the emitted file.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=3x -count=3 -benchmem . | tee bench.out
//	benchgate -input bench.out -baseline BENCH_ci.json -tolerance 0.25 -write BENCH_ci.json
//
// With -count > 1 the gate scores each benchmark by its fastest run
// (minimum ns/op), the standard noise-robust choice. When the run used
// -benchmem, the B/op and allocs/op columns are carried into the
// emitted trajectory artifact (informational, not gated), so
// allocation regressions are visible in CI diffs. Benchmarks whose
// baseline is below -floor (default 100µs) are reported but not gated
// — at -benchtime=3x their runtime is scheduler noise, not signal.
// Benchmarks new to the baseline pass with a note; tracked benchmarks
// that disappeared fail, so a deleted benchmark must be removed from
// the baseline deliberately. -init (or a missing baseline with -init)
// seeds a first baseline instead of comparing.
//
// The committed baseline should come from the environment that gates
// it: seed locally to bootstrap, then replace it with the
// BENCH_ci.fresh.json artifact a CI run emits, so the comparison is
// runner-to-runner rather than laptop-to-runner.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's scored measurement.
type Result struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// GOMAXPROCS suffix, e.g. "Fig01" or "ProbeVsSweep/cuDNN".
	Name string `json:"name"`
	// NsPerOp is the minimum ns/op across the parsed runs.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the -benchmem columns (minimum
	// across measured runs), recorded in the trajectory artifact so
	// allocation regressions are visible in CI; they are informational,
	// not gated. -1 means the run carried no -benchmem columns ("not
	// measured"), which keeps a genuine 0 B/op — the zero-alloc
	// contract some benchmarks pin — distinguishable from absence.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Runs is how many runs were parsed (the -count).
	Runs int `json:"runs"`
}

// Baseline is the committed BENCH_ci.json shape.
type Baseline struct {
	// Command documents how the numbers were produced.
	Command    string   `json:"command"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	input := flag.String("input", "", "bench output file (default: stdin)")
	baselinePath := flag.String("baseline", "BENCH_ci.json", "committed baseline JSON to gate against")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression before failing")
	floor := flag.Float64("floor", 100_000, "baseline ns/op below which a benchmark is informational, not gated")
	write := flag.String("write", "", "emit the freshly measured results to this JSON file")
	initMode := flag.Bool("init", false, "seed the baseline instead of gating (no comparison)")
	flag.Parse()

	if err := run(*input, *baselinePath, *tolerance, *floor, *write, *initMode, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}

func run(input, baselinePath string, tolerance, floor float64, write string, initMode bool, out io.Writer) error {
	if tolerance < 0 {
		return fmt.Errorf("tolerance %v must be >= 0", tolerance)
	}
	var rd io.Reader = os.Stdin
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		rd = f
	}
	results, err := Parse(rd)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}

	if write != "" {
		if err := writeBaseline(write, results); err != nil {
			return err
		}
		fmt.Fprintf(out, "benchgate: wrote %d benchmarks to %s\n", len(results), write)
	}
	if initMode {
		return nil
	}

	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline (run with -init to seed it): %w", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	failures, notes := Gate(base.Benchmarks, results, tolerance, floor)
	for _, n := range notes {
		fmt.Fprintf(out, "benchgate: %s\n", n)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%:\n  %s",
			len(failures), tolerance*100, strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(out, "benchgate: %d tracked benchmarks within %.0f%% of baseline\n",
		len(base.Benchmarks), tolerance*100)
	return nil
}

// Parse reads `go test -bench` output and scores each benchmark by its
// minimum ns/op across repeated runs.
func Parse(r io.Reader) ([]Result, error) {
	best := make(map[string]*Result)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  3  123456 ns/op  [metric unit]...
		if len(fields) < 4 {
			continue
		}
		ns, bytesOp, allocsOp := -1.0, -1.0, -1.0
		for i := 2; i+1 < len(fields); i++ {
			var dst *float64
			switch fields[i+1] {
			case "ns/op":
				dst = &ns
			case "B/op":
				dst = &bytesOp
			case "allocs/op":
				dst = &allocsOp
			default:
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad %s %q in %q", fields[i+1], fields[i], line)
			}
			*dst = v
		}
		if ns < 0 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix, which is not part of the
			// identity (sub-benchmark names keep their slashes).
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if b, ok := best[name]; ok {
			b.Runs++
			if ns < b.NsPerOp {
				b.NsPerOp = ns
			}
			// Minimum over measured runs only: an unmeasured run (-1)
			// neither seeds nor lowers the column, so mixing runs with
			// and without -benchmem keeps the measured minimum.
			if bytesOp >= 0 && (b.BytesPerOp < 0 || bytesOp < b.BytesPerOp) {
				b.BytesPerOp = bytesOp
			}
			if allocsOp >= 0 && (b.AllocsPerOp < 0 || allocsOp < b.AllocsPerOp) {
				b.AllocsPerOp = allocsOp
			}
		} else {
			best[name] = &Result{Name: name, NsPerOp: ns, BytesPerOp: bytesOp, AllocsPerOp: allocsOp, Runs: 1}
			order = append(order, name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		out = append(out, *best[name])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Gate compares current results against the baseline. It returns the
// regression failures and informational notes (new benchmarks, and
// regressions on sub-floor benchmarks too short to gate reliably).
func Gate(baseline, current []Result, tolerance, floor float64) (failures, notes []string) {
	cur := make(map[string]Result, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}
	tracked := make(map[string]bool, len(baseline))
	for _, b := range baseline {
		tracked[b.Name] = true
		c, ok := cur[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: tracked benchmark missing from run", b.Name))
			continue
		}
		limit := b.NsPerOp * (1 + tolerance)
		if c.NsPerOp > limit {
			msg := fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%%, limit +%.0f%%)",
				b.Name, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), tolerance*100)
			if b.NsPerOp < floor {
				notes = append(notes, msg+" [below gating floor, informational]")
			} else {
				failures = append(failures, msg)
			}
		}
	}
	for _, r := range current {
		if !tracked[r.Name] {
			notes = append(notes, fmt.Sprintf("%s: new benchmark (not yet in baseline)", r.Name))
		}
	}
	return failures, notes
}

func writeBaseline(path string, results []Result) error {
	b := Baseline{
		Command:    "go test -run='^$' -bench=. -benchtime=3x -count=3 -benchmem .",
		Benchmarks: results,
	}
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
