// Command pruneplan runs the paper's §V performance-aware pruning loop
// on a whole network for a chosen target and compares it against
// uninstructed (device-agnostic) pruning.
//
// Usage:
//
//	pruneplan -net ResNet-50 -lib acl-direct -device "HiKey 970" -speedup 1.5 -maxdrop 2.0
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"perfprune"
	"perfprune/internal/device"
	"perfprune/internal/nets"
)

func main() {
	netName := flag.String("net", "ResNet-50", "network: ResNet-50, VGG-16, AlexNet or MobileNet-V1")
	libName := flag.String("backend", "acl-gemm",
		"backend: "+strings.Join(perfprune.BackendNames(), ", "))
	devName := flag.String("device", "HiKey 970", "target board")
	flag.StringVar(libName, "lib", *libName, "alias for -backend")
	speedup := flag.Float64("speedup", 1.5, "target whole-network speedup")
	maxDrop := flag.Float64("maxdrop", 2.0, "maximum modeled accuracy drop (points)")
	fraction := flag.Float64("uninstructed", 0.12, "uniform prune fraction for the baseline comparison")
	showPlan := flag.Bool("plan", false, "print the per-layer channel plan")
	flag.Parse()

	if err := run(*netName, *libName, *devName, *speedup, *maxDrop, *fraction, *showPlan); err != nil {
		fmt.Fprintf(os.Stderr, "pruneplan: %v\n", err)
		os.Exit(1)
	}
}

func run(netName, libName, devName string, speedup, maxDrop, fraction float64, showPlan bool) error {
	n, err := nets.ByName(netName)
	if err != nil {
		return err
	}
	lib, err := perfprune.LookupBackend(libName)
	if err != nil {
		return err
	}
	dev, err := device.ByName(devName)
	if err != nil {
		return err
	}
	tg := perfprune.Target{Device: dev, Library: lib}
	fmt.Printf("profiling %s on %s ...\n", n.Name, tg)
	np, err := perfprune.ProfileNetwork(tg, n)
	if err != nil {
		return err
	}
	pl, err := perfprune.NewPlanner(np)
	if err != nil {
		return err
	}

	unin, err := pl.Uninstructed(fraction)
	if err != nil {
		return err
	}
	aware, err := pl.PerformanceAware(speedup, maxDrop)
	if err != nil {
		return err
	}

	fmt.Printf("\nbaseline (unpruned):          %10.2f ms, accuracy %.1f%%\n",
		aware.BaselineMs, pl.Acc.Base)
	fmt.Printf("uninstructed %.0f%% prune:      %10.2f ms (%.2fx), accuracy %.1f%%\n",
		fraction*100, unin.LatencyMs, unin.Speedup, unin.Accuracy)
	if unin.Speedup < 1 {
		fmt.Println("  WARNING: uninstructed pruning made the network slower than no pruning")
	}
	fmt.Printf("performance-aware (%.2fx):    %10.2f ms (%.2fx), accuracy %.1f%%\n",
		speedup, aware.LatencyMs, aware.Speedup, aware.Accuracy)

	if showPlan {
		fmt.Println("\nper-layer plan (pruned layers only):")
		labels := make([]string, 0, len(aware.Plan))
		for label := range aware.Plan {
			labels = append(labels, label)
		}
		sort.Strings(labels)
		for _, label := range labels {
			l, _ := n.Layer(label)
			keep := aware.Plan[label]
			if keep == l.Spec.OutC {
				continue
			}
			fmt.Printf("  %-14s %4d -> %4d channels\n", label, l.Spec.OutC, keep)
		}
	}
	return nil
}
