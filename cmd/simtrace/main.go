// Command simtrace exposes the GPU simulator's view of one ACL layer
// execution — the §IV-B analysis: per-kernel instruction counts
// (Tables I-IV), job fan-out, split decisions, work-group sizes
// (Table V) and system-level counters (Fig. 18).
//
// Usage:
//
//	simtrace -channels 92 [-method gemm|direct] [-device "HiKey 970"]
package main

import (
	"flag"
	"fmt"
	"os"

	"perfprune/internal/acl"
	"perfprune/internal/backend"
	"perfprune/internal/device"
	"perfprune/internal/nets"
)

func main() {
	channels := flag.Int("channels", 92, "output channel count to trace")
	methodName := flag.String("method", "gemm", "ACL method: gemm or direct")
	devName := flag.String("device", "HiKey 970", "Mali board: HiKey 970 or Odroid XU4")
	layerName := flag.String("layer", "ResNet.L16", "ResNet-50 layer label")
	flag.Parse()

	if err := run(*channels, *methodName, *devName, *layerName); err != nil {
		fmt.Fprintf(os.Stderr, "simtrace: %v\n", err)
		os.Exit(1)
	}
}

func run(channels int, methodName, devName, layerName string) error {
	var method acl.Method
	switch methodName {
	case "gemm":
		method = acl.GEMMConv
	case "direct":
		method = acl.DirectConv
	default:
		return fmt.Errorf("unknown method %q (gemm or direct)", methodName)
	}
	dev, err := device.ByName(devName)
	if err != nil {
		return err
	}
	n := nets.ResNet50()
	layer, ok := n.Layer(layerName)
	if !ok {
		return fmt.Errorf("ResNet-50 has no layer %s", layerName)
	}
	spec := layer.Spec.WithOutC(channels)

	p, err := acl.Run(dev, spec, method)
	if err != nil {
		return err
	}

	fmt.Printf("%s with %d output channels, %s on %s\n\n", layerName, channels, method, dev.Name)
	fmt.Printf("%-22s %6s  %18s %15s %10s %6s\n",
		"kernel", "WGs", "arith instr", "mem instr", "ms", "flags")
	for i, j := range p.Result.Jobs {
		flags := ""
		if j.Split {
			flags += "split "
		}
		if j.Prepare {
			flags += "prepare"
		}
		ms := (j.Cycles + j.GapCycles) / dev.GPU.CyclesPerMs()
		fmt.Printf("%-22s %6d  %18d %15d %10.3f %6s\n",
			j.Name, j.WorkGroups, j.ArithInstrs, j.MemInstrs, ms, flags)
		_ = i
	}
	if method == acl.DirectConv {
		wg := acl.WorkGroupFor(channels)
		fmt.Printf("\nwork-group size heuristic: %dx%dx%d\n", wg[0], wg[1], wg[2])
	}

	c := p.Result.SteadyCounters()
	fmt.Printf("\nOpenCL calls: %d, hardware jobs: %d (split jobs: %d)\n",
		len(p.Calls), c.Jobs, c.SplitJobs)
	fmt.Printf("control register reads/writes: %d/%d, interrupts: %d\n",
		c.CtrlRegReads, c.CtrlRegWrites, c.Interrupts)
	fmt.Printf("steady-state inference time: %.3f ms\n", p.Ms)

	// Cross-check against the backend registry: the registered backend
	// must report exactly the latency traced above.
	key := "acl-gemm"
	if method == acl.DirectConv {
		key = "acl-direct"
	}
	b, err := backend.Lookup(key)
	if err != nil {
		return err
	}
	m, err := b.Measure(dev, spec)
	if err != nil {
		return err
	}
	fmt.Printf("registry backend %q measures: %.3f ms, %d jobs\n", key, m.Ms, m.Jobs)
	return nil
}
