package main

// fleetsim's contract is the daemon's judgment, so the tests run the
// real service in-process (simulated backends: deterministic, fast)
// rather than a scripted fake — the throttle/sawtooth/shift verdicts
// are exactly what the drift monitor decides.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"perfprune/internal/service"
)

func simServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := service.New(service.Config{Backends: []string{"acl-gemm"}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func simConfig(base string, scenarios ...string) config {
	return config{
		base:       base,
		backendKey: "acl-gemm",
		deviceName: "HiKey 970",
		network:    "AlexNet",
		scenarios:  scenarios,
		magnitude:  1.5,
		rounds:     3,
		timeout:    30 * time.Second,
	}
}

// TestScenarioVerdicts runs all three scenarios end to end: the two
// real drifts repair (each publishing a plan version), the jitter does
// not, and the final history carries exactly the repair versions.
func TestScenarioVerdicts(t *testing.T) {
	ts := simServer(t)
	client := &http.Client{Timeout: 30 * time.Second}
	rep, err := runScenarios(context.Background(), client,
		simConfig(ts.URL, "throttle", "sawtooth", "shift"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 3 {
		t.Fatalf("ran %d scenarios, want 3", len(rep.Scenarios))
	}
	byName := map[string]scenarioResult{}
	layers := map[string]bool{}
	for _, s := range rep.Scenarios {
		byName[s.Name] = s
		if !s.Pass {
			t.Errorf("%s: verdict %v, wanted repair=%v (layers %v)", s.Name, s.Repaired, s.WantRepair, s.RepairedLayers)
		}
		if layers[s.Layer] {
			t.Errorf("layer %s reused across scenarios", s.Layer)
		}
		layers[s.Layer] = true
	}
	throttle := byName["throttle"]
	if !throttle.Repaired || len(throttle.NewVersions) == 0 {
		t.Fatalf("throttle did not publish a repair version: %+v", throttle)
	}
	// The repair was incremental: the prober paid less than half the
	// exhaustive grid.
	if throttle.GridPoints == 0 || throttle.Probes*2 >= throttle.GridPoints {
		t.Errorf("throttle repair not incremental: %d probes vs %d grid points",
			throttle.Probes, throttle.GridPoints)
	}
	if saw := byName["sawtooth"]; saw.Repaired {
		t.Errorf("sawtooth jitter triggered a repair of %v", saw.RepairedLayers)
	}
	if sh := byName["shift"]; !sh.Repaired {
		t.Error("staircase shift went unrepaired")
	}

	// History: v1 initial plus one version per repairing scenario.
	if len(rep.History) != 3 {
		t.Fatalf("history has %d versions, want 3: %+v", len(rep.History), rep.History)
	}
	if rep.History[0].Trigger != "initial" ||
		rep.History[1].Trigger != "drift_repair" || rep.History[2].Trigger != "drift_repair" {
		t.Errorf("history triggers wrong: %+v", rep.History)
	}

	// The text report names every verdict.
	var sb strings.Builder
	printReport(&sb, rep)
	for _, want := range []string{"PASS throttle", "PASS sawtooth", "PASS shift", "plan history: 3 versions", "v2 drift_repair"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}
}

// TestScenarioErrors: harness misuse fails loudly instead of passing
// vacuously.
func TestScenarioErrors(t *testing.T) {
	ts := simServer(t)
	client := &http.Client{Timeout: 30 * time.Second}

	if _, err := runScenarios(context.Background(), client, simConfig(ts.URL, "bogus")); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("unknown scenario error = %v", err)
	}
	if _, err := runScenarios(context.Background(), client, simConfig(ts.URL)); err == nil {
		t.Error("empty scenario list accepted")
	}
	cfg := simConfig(ts.URL, "throttle")
	cfg.rounds = 0
	if _, err := runScenarios(context.Background(), client, cfg); err == nil {
		t.Error("zero rounds accepted")
	}
	// More scenarios than unique layers: refused up front, not silently
	// doubled onto one layer.
	many := simConfig(ts.URL, "throttle", "throttle", "throttle", "throttle", "throttle", "throttle")
	if _, err := runScenarios(context.Background(), client, many); err == nil ||
		!strings.Contains(err.Error(), "unique layers") {
		t.Errorf("layer exhaustion error = %v", err)
	}
	// Dead daemon: a transport error, not a verdict.
	dead := simConfig("http://127.0.0.1:1", "throttle")
	dead.timeout = time.Second
	if _, err := runScenarios(context.Background(), client, dead); err == nil {
		t.Error("dead daemon produced a report")
	}
}

// TestShiftBatchesShape: the generator translates the curve, clamping
// at channel 1.
func TestShiftBatchesShape(t *testing.T) {
	curve := make([]point, 16)
	for i := range curve {
		curve[i] = point{Channels: i + 1, Ms: float64(i + 1)}
	}
	got := shiftBatches(curve, 2)
	if len(got) != 2 {
		t.Fatalf("batches = %d", len(got))
	}
	for _, b := range got {
		if len(b) != 16 {
			t.Fatalf("batch has %d points, want 16", len(b))
		}
		// k = 16/8 = 2: channel 5 reports stored(3); channel 1 clamps.
		if b[4].Ms != 3 || b[0].Ms != 1 {
			t.Fatalf("shifted batch wrong: %+v", b[:5])
		}
	}
}

// TestSawtoothBatchesAlternate: the jitter flips sign point to point
// (inside the batch), never a whole batch at one sign — a full batch
// at +20% would legitimately repair.
func TestSawtoothBatchesAlternate(t *testing.T) {
	curve := make([]point, 8)
	for i := range curve {
		curve[i] = point{Channels: i + 1, Ms: 10}
	}
	got := sawtoothBatches(curve, stairInfo{LoC: 2, HiC: 6}, 2)
	if len(got) != 4 {
		t.Fatalf("batches = %d", len(got))
	}
	for r, b := range got {
		if len(b) != 5 {
			t.Fatalf("batch %d has %d points, want the stair's 5", r, len(b))
		}
		for i := 1; i < len(b); i++ {
			if (b[i].Ms > 10) == (b[i-1].Ms > 10) {
				t.Fatalf("batch %d does not alternate: %+v", r, b)
			}
		}
	}
	// Consecutive batches start on opposite signs.
	if (got[0][0].Ms > 10) == (got[1][0].Ms > 10) {
		t.Error("batches all start on the same sign")
	}
}
