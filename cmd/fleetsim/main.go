// Command fleetsim replays synthetic fleet-drift scenarios against a
// running perfpruned daemon and scores the closed loop's judgment:
// drift it should repair (thermal throttling, a driver update shifting
// the staircase) must publish a new plan version, and noise it should
// tolerate (DVFS jitter sawtoothing around the stored curve) must not.
// Each scenario drives its own layer so verdicts never contaminate
// each other, and the process exits non-zero when any verdict is
// wrong — CI runs it against a live daemon exactly like planload.
//
// Usage:
//
//	fleetsim -addr http://127.0.0.1:7070 -network AlexNet \
//	         -backend acl-gemm -device "HiKey 970" \
//	         -scenarios throttle,sawtooth,shift -magnitude 1.5
//
// Scenarios:
//
//	throttle  sustained thermal throttle: one interior stair reports
//	          magnitude × its stored latency until repaired
//	sawtooth  DVFS jitter: consecutive points alternate +20% / -20%
//	          around the stored curve; the EWMA must smooth it below
//	          tolerance instead of repairing
//	shift     driver update: the whole curve shifts right by an eighth
//	          of the layer width — drifted(c) = stored(max(1, c-k))
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"
)

// config is one simulation run's shape.
type config struct {
	base       string
	backendKey string
	deviceName string
	network    string
	scenarios  []string
	magnitude  float64 // throttle factor (also sizes the shift)
	rounds     int     // sustained batches per scenario (>= the daemon's MinSamples)
	timeout    time.Duration
}

// point mirrors the wire's (channels, ms) sample.
type point struct {
	Channels int     `json:"channels"`
	Ms       float64 `json:"ms"`
}

// stairInfo mirrors the wire's staircase plateau.
type stairInfo struct {
	LoC int     `json:"lo_c"`
	HiC int     `json:"hi_c"`
	Ms  float64 `json:"ms"`
}

// scenarioResult is one scenario's verdict.
type scenarioResult struct {
	Name           string   `json:"name"`
	Layer          string   `json:"layer"`
	Batches        int      `json:"batches"`
	Points         int      `json:"points"`
	WantRepair     bool     `json:"want_repair"`
	Repaired       bool     `json:"repaired"`
	Pass           bool     `json:"pass"`
	RepairedLayers []string `json:"repaired_layers,omitempty"`
	NewVersions    []int    `json:"new_versions,omitempty"`
	Probes         int      `json:"probes,omitempty"`
	GridPoints     int      `json:"grid_points,omitempty"`
}

// Report is the whole run: every scenario verdict, the long-poll
// subscriber's verdict, plus the daemon's final plan-version history
// for the driven key.
type Report struct {
	Scenarios  []scenarioResult  `json:"scenarios"`
	Subscriber *subscriberResult `json:"subscriber,omitempty"`
	History    []historicVersion `json:"history,omitempty"`
}

// subscriberResult scores the long-poll subscription raced against the
// scenario drives: a waiter parked at wait_version=N before any drift
// is posted must be woken by the first repair-published version > N,
// not by its timeout.
type subscriberResult struct {
	WaitVersion int     `json:"wait_version"`
	WokeVersion int     `json:"woke_version"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	Pass        bool    `json:"pass"`
}

// historicVersion is the slice of a plan version the report shows.
type historicVersion struct {
	Version        int      `json:"version"`
	Trigger        string   `json:"trigger"`
	RepairedLayers []string `json:"repaired_layers,omitempty"`
	LatencyMs      float64  `json:"latency_ms"`
	Speedup        float64  `json:"speedup"`
}

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:7070", "perfpruned base URL")
		backend   = flag.String("backend", "acl-gemm", "backend registry key")
		device    = flag.String("device", "HiKey 970", "target board")
		network   = flag.String("network", "AlexNet", "network to plan and drift")
		scenarios = flag.String("scenarios", "throttle,sawtooth,shift", "comma-separated scenario list")
		magnitude = flag.Float64("magnitude", 1.5, "throttle latency factor (must clear the daemon's drift tolerance)")
		rounds    = flag.Int("rounds", 3, "sustained telemetry batches per scenario (>= the daemon's min-samples policy)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON instead of text")
	)
	flag.Parse()

	cfg := config{
		base:       strings.TrimRight(*addr, "/"),
		backendKey: *backend,
		deviceName: *device,
		network:    *network,
		magnitude:  *magnitude,
		rounds:     *rounds,
		timeout:    *timeout,
	}
	for _, s := range strings.Split(*scenarios, ",") {
		if s = strings.TrimSpace(s); s != "" {
			cfg.scenarios = append(cfg.scenarios, s)
		}
	}

	client := &http.Client{Timeout: cfg.timeout}
	rep, err := runScenarios(context.Background(), client, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep) //nolint:errcheck
	} else {
		printReport(os.Stdout, rep)
	}
	for _, s := range rep.Scenarios {
		if !s.Pass {
			os.Exit(1)
		}
	}
	if rep.Subscriber != nil && !rep.Subscriber.Pass {
		os.Exit(1)
	}
}

// runScenarios registers the plan, assigns each scenario its own
// layer (widest unique first) and replays them in order.
func runScenarios(ctx context.Context, client *http.Client, cfg config) (Report, error) {
	if cfg.rounds < 1 {
		return Report{}, fmt.Errorf("rounds %d must be >= 1", cfg.rounds)
	}
	if len(cfg.scenarios) == 0 {
		return Report{}, fmt.Errorf("empty scenario list")
	}
	planBody, _ := json.Marshal(map[string]any{
		"backend": cfg.backendKey, "device": cfg.deviceName, "network": cfg.network,
	})
	// The plan registers the key with the drift monitor; telemetry for
	// an unplanned key is a 422.
	if err := postJSON(ctx, client, cfg.base+"/v1/plan", string(planBody), nil); err != nil {
		return Report{}, fmt.Errorf("registering plan: %w", err)
	}

	layers, err := uniqueLayers(ctx, client, cfg)
	if err != nil {
		return Report{}, err
	}
	if len(layers) < len(cfg.scenarios) {
		return Report{}, fmt.Errorf("%s has %d unique layers, need one per scenario (%d)",
			cfg.network, len(layers), len(cfg.scenarios))
	}

	// Park a long-poll subscriber at the current head version before
	// any drift is driven: the first repair publication must wake it.
	baseHist, err := fetchHistory(ctx, client, cfg)
	if err != nil {
		return Report{}, err
	}
	baseVersion := 0
	for _, v := range baseHist {
		if v.Version > baseVersion {
			baseVersion = v.Version
		}
	}
	subCh := make(chan subscriberResult, 1)
	go func() {
		res, err := longPollVersions(ctx, cfg, baseVersion)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: long-poll subscriber: %v\n", err)
		}
		subCh <- res
	}()

	var rep Report
	for i, name := range cfg.scenarios {
		res, err := runScenario(ctx, client, cfg, name, layers[i])
		if err != nil {
			return Report{}, fmt.Errorf("scenario %s: %w", name, err)
		}
		rep.Scenarios = append(rep.Scenarios, res)
	}

	sub := <-subCh
	anyRepair := false
	for _, s := range rep.Scenarios {
		if s.Repaired {
			anyRepair = true
		}
	}
	// With a repair on the wire the subscriber must have observed a
	// strictly newer version; with none, waking at the base (via its
	// server-side timeout) is the correct outcome.
	sub.Pass = sub.WokeVersion > sub.WaitVersion || !anyRepair
	rep.Subscriber = &sub

	rep.History, err = fetchHistory(ctx, client, cfg)
	if err != nil {
		return Report{}, err
	}
	return rep, nil
}

// longPollVersions blocks on GET /v1/plans/{network}/{target} with
// wait_version until the daemon publishes a newer version or the
// server-side timeout fires, and reports the head version it woke to.
func longPollVersions(ctx context.Context, cfg config, after int) (subscriberResult, error) {
	res := subscriberResult{WaitVersion: after}
	target := url.PathEscape(cfg.backendKey + "@" + cfg.deviceName)
	u := fmt.Sprintf("%s/v1/plans/%s/%s?wait_version=%d&timeout_s=%g",
		cfg.base, url.PathEscape(cfg.network), target, after, cfg.timeout.Seconds())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return res, err
	}
	// The poll is expected to hold the connection open up to timeout_s;
	// give the client transport room beyond that.
	waitClient := &http.Client{Timeout: cfg.timeout + 10*time.Second}
	start := time.Now()
	resp, err := waitClient.Do(req)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	res.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	if resp.StatusCode != http.StatusOK {
		return res, fmt.Errorf("long-poll: %s", resp.Status)
	}
	var hist struct {
		Versions []historicVersion `json:"versions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		return res, err
	}
	for _, v := range hist.Versions {
		if v.Version > res.WokeVersion {
			res.WokeVersion = v.Version
		}
	}
	return res, nil
}

// runScenario fetches the layer's staircase, generates the scenario's
// telemetry batches and posts them, scoring the daemon's verdict.
func runScenario(ctx context.Context, client *http.Client, cfg config, name, layer string) (scenarioResult, error) {
	curve, stairs, err := fetchStaircase(ctx, client, cfg, layer)
	if err != nil {
		return scenarioResult{}, err
	}
	s, err := interiorStair(stairs, 3)
	if err != nil {
		return scenarioResult{}, fmt.Errorf("%s: %w", layer, err)
	}

	var batches [][]point
	wantRepair := true
	switch name {
	case "throttle":
		batches = throttleBatches(curve, s, cfg.magnitude, cfg.rounds)
	case "sawtooth":
		batches = sawtoothBatches(curve, s, cfg.rounds)
		wantRepair = false
	case "shift":
		batches = shiftBatches(curve, cfg.rounds)
	default:
		return scenarioResult{}, fmt.Errorf("unknown scenario %q (have: throttle, sawtooth, shift)", name)
	}

	res := scenarioResult{Name: name, Layer: layer, Batches: len(batches), WantRepair: wantRepair}
	for _, batch := range batches {
		res.Points += len(batch)
		points := make([]map[string]any, 0, len(batch))
		for _, p := range batch {
			points = append(points, map[string]any{"layer": layer, "channels": p.Channels, "ms": p.Ms})
		}
		body, err := json.Marshal(map[string]any{
			"backend": cfg.backendKey, "device": cfg.deviceName, "network": cfg.network, "points": points,
		})
		if err != nil {
			return res, err
		}
		var tr struct {
			RepairedLayers []string `json:"repaired_layers"`
			Repair         *struct {
				Probes     int `json:"probes"`
				GridPoints int `json:"grid_points"`
			} `json:"repair"`
			NewVersion *struct {
				Version int `json:"version"`
			} `json:"new_version"`
		}
		if err := postJSON(ctx, client, cfg.base+"/v1/telemetry", string(body), &tr); err != nil {
			return res, err
		}
		if len(tr.RepairedLayers) > 0 {
			res.Repaired = true
			res.RepairedLayers = append(res.RepairedLayers, tr.RepairedLayers...)
		}
		if tr.Repair != nil {
			res.Probes += tr.Repair.Probes
			res.GridPoints += tr.Repair.GridPoints
		}
		if tr.NewVersion != nil {
			res.NewVersions = append(res.NewVersions, tr.NewVersion.Version)
		}
	}
	res.Pass = res.Repaired == res.WantRepair
	return res, nil
}

// throttleBatches: every channel of the stair at factor × its stored
// latency, sustained for rounds batches — unambiguous drift.
func throttleBatches(curve []point, s stairInfo, factor float64, rounds int) [][]point {
	var out [][]point
	for r := 0; r < rounds; r++ {
		out = append(out, scaleStair(curve, s, factor))
	}
	return out
}

// sawtoothBatches: consecutive points alternate +20% and -20% around
// the stored curve — DVFS flips faster than the reporting cadence, so
// the jitter lands inside each batch. The stair's deviation EWMA must
// smooth it to a few percent and classify healthy; a sustained +20%
// (one full batch per sign) would instead cross tolerance and repair.
func sawtoothBatches(curve []point, s stairInfo, rounds int) [][]point {
	var out [][]point
	for r := 0; r < 2*rounds; r++ {
		batch := scaleStair(curve, s, 1)
		for i := range batch {
			if (r+i)%2 == 0 {
				batch[i].Ms *= 1.2
			} else {
				batch[i].Ms *= 0.8
			}
		}
		out = append(out, batch)
	}
	return out
}

// shiftBatches: the whole curve translates right by an eighth of the
// layer width — drifted(c) = stored(max(1, c-k)) — the signature of a
// driver update re-tiling its kernels.
func shiftBatches(curve []point, rounds int) [][]point {
	k := len(curve) / 8
	if k < 1 {
		k = 1
	}
	byChannel := make(map[int]float64, len(curve))
	for _, p := range curve {
		byChannel[p.Channels] = p.Ms
	}
	var out [][]point
	for r := 0; r < rounds; r++ {
		batch := make([]point, 0, len(curve))
		for _, p := range curve {
			src := p.Channels - k
			if src < 1 {
				src = 1
			}
			if ms, ok := byChannel[src]; ok {
				batch = append(batch, point{Channels: p.Channels, Ms: ms})
			}
		}
		out = append(out, batch)
	}
	return out
}

// scaleStair reports every channel of the stair at factor × stored.
func scaleStair(curve []point, s stairInfo, factor float64) []point {
	var out []point
	for _, p := range curve {
		if p.Channels >= s.LoC && p.Channels <= s.HiC {
			out = append(out, point{Channels: p.Channels, Ms: factor * p.Ms})
		}
	}
	return out
}

// interiorStair picks the first stair that is strictly interior (so
// repairs exercise a proper sub-interval) and at least minWidth wide.
func interiorStair(stairs []stairInfo, minWidth int) (stairInfo, error) {
	for i, s := range stairs {
		if i == 0 || i == len(stairs)-1 {
			continue
		}
		if s.HiC-s.LoC+1 >= minWidth {
			return s, nil
		}
	}
	return stairInfo{}, fmt.Errorf("no interior stair of width >= %d (%d stairs)", minWidth, len(stairs))
}

// uniqueLayers lists the network's unique layers widest-first — each
// scenario drives its own so a repair in one cannot contaminate the
// next scenario's baseline.
func uniqueLayers(ctx context.Context, client *http.Client, cfg config) ([]string, error) {
	var networks []struct {
		Name   string `json:"name"`
		Layers []struct {
			Label    string `json:"label"`
			Channels int    `json:"channels"`
			Unique   bool   `json:"unique"`
		} `json:"layers"`
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.base+"/v1/networks", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	err = json.NewDecoder(resp.Body).Decode(&networks)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("GET /v1/networks: %w", err)
	}
	type cand struct {
		label string
		width int
	}
	var cands []cand
	for _, n := range networks {
		if n.Name != cfg.network {
			continue
		}
		for _, l := range n.Layers {
			if l.Unique {
				cands = append(cands, cand{l.Label, l.Channels})
			}
		}
	}
	// Insertion sort widest-first; layer counts are tiny.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].width > cands[j-1].width; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.label
	}
	return out, nil
}

// fetchStaircase pulls the daemon's stored curve and plateaus for one
// layer — the baseline every scenario perturbs.
func fetchStaircase(ctx context.Context, client *http.Client, cfg config, layer string) ([]point, []stairInfo, error) {
	body, _ := json.Marshal(map[string]any{
		"backend": cfg.backendKey, "device": cfg.deviceName, "network": cfg.network, "layer": layer,
	})
	var sc struct {
		Points []point     `json:"points"`
		Stairs []stairInfo `json:"stairs"`
	}
	if err := postJSON(ctx, client, cfg.base+"/v1/staircase", string(body), &sc); err != nil {
		return nil, nil, fmt.Errorf("staircase of %s: %w", layer, err)
	}
	if len(sc.Points) == 0 || len(sc.Stairs) == 0 {
		return nil, nil, fmt.Errorf("staircase of %s came back empty", layer)
	}
	return sc.Points, sc.Stairs, nil
}

// fetchHistory pulls the key's plan-version changelog.
func fetchHistory(ctx context.Context, client *http.Client, cfg config) ([]historicVersion, error) {
	target := url.PathEscape(cfg.backendKey + "@" + cfg.deviceName)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		cfg.base+"/v1/plans/"+url.PathEscape(cfg.network)+"/"+target, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET plan history: %s", resp.Status)
	}
	var hist struct {
		Versions []historicVersion `json:"versions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		return nil, err
	}
	return hist.Versions, nil
}

// postJSON posts a body and decodes the 200 response into out (out may
// be nil to discard it).
func postJSON(ctx context.Context, client *http.Client, url, body string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, strings.TrimSpace(string(raw)))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// printReport renders the text report.
func printReport(w io.Writer, rep Report) {
	for _, s := range rep.Scenarios {
		verdict := "PASS"
		if !s.Pass {
			verdict = "FAIL"
		}
		action := "no repair"
		if s.Repaired {
			action = fmt.Sprintf("repaired %s", strings.Join(s.RepairedLayers, ", "))
			if s.GridPoints > 0 {
				action += fmt.Sprintf(" (%d probes vs %d grid points)", s.Probes, s.GridPoints)
			}
		}
		want := "repair"
		if !s.WantRepair {
			want = "tolerance"
		}
		fmt.Fprintf(w, "%s %-9s %s: %d batches / %d points -> %s (wanted %s)\n",
			verdict, s.Name, s.Layer, s.Batches, s.Points, action, want)
	}
	if s := rep.Subscriber; s != nil {
		verdict := "PASS"
		if !s.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "%s subscriber: parked at v%d, woke at v%d after %.0fms\n",
			verdict, s.WaitVersion, s.WokeVersion, s.ElapsedMs)
	}
	if len(rep.History) > 0 {
		fmt.Fprintf(w, "plan history: %d versions\n", len(rep.History))
		for _, v := range rep.History {
			line := fmt.Sprintf("  v%d %-12s latency %.3fms speedup %.3f", v.Version, v.Trigger, v.LatencyMs, v.Speedup)
			if len(v.RepairedLayers) > 0 {
				line += " repaired " + strings.Join(v.RepairedLayers, ", ")
			}
			fmt.Fprintln(w, line)
		}
	}
}
