// Command layersweep profiles one convolutional layer across channel
// counts on a chosen (library, device) target — the paper's §IV
// methodology for a single layer — and prints the staircase curve, its
// detected stairs, and the right-edge optimal pruning points.
//
// Usage:
//
//	layersweep -net ResNet-50 -layer ResNet.L16 -backend acl-gemm -device "HiKey 970" [-csv]
//	layersweep -net VGG-16 -layer VGG.L24 -backend cudnn -device "Jetson TX2" -probe
//
// Any backend from the registry works, including "hybrid",
// "acl-direct-tuned" and the real-compute kernels ("real-gemm", ...).
// With -probe the staircase is discovered adaptively — stair edges are
// bisected instead of sweeping every channel count — and the audit
// line reports how many measurements that avoided.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"perfprune"
	"perfprune/internal/device"
	"perfprune/internal/nets"
	"perfprune/internal/report"
	"perfprune/internal/staircase"
)

func main() {
	netName := flag.String("net", "ResNet-50", "network: ResNet-50, VGG-16, AlexNet or MobileNet-V1")
	layerName := flag.String("layer", "ResNet.L16", "layer label, e.g. ResNet.L16")
	backendKey := flag.String("backend", "acl-gemm",
		"backend: "+strings.Join(perfprune.BackendNames(), ", "))
	devName := flag.String("device", "HiKey 970", "board: HiKey 970, Odroid XU4, Jetson TX2 or Jetson Nano")
	lo := flag.Int("from", 1, "lowest channel count to sweep")
	csv := flag.Bool("csv", false, "emit channels,ms CSV instead of the ASCII plot")
	probeMode := flag.Bool("probe", false,
		"discover the staircase adaptively (bisect stair edges) instead of sweeping every channel count")
	flag.StringVar(backendKey, "lib", *backendKey, "alias for -backend")
	flag.Parse()

	if err := run(*netName, *layerName, *backendKey, *devName, *lo, *csv, *probeMode); err != nil {
		fmt.Fprintf(os.Stderr, "layersweep: %v\n", err)
		os.Exit(1)
	}
}

func run(netName, layerName, libName, devName string, lo int, csv, probeMode bool) error {
	n, err := nets.ByName(netName)
	if err != nil {
		return err
	}
	layer, ok := n.Layer(layerName)
	if !ok {
		return fmt.Errorf("network %s has no layer %s", netName, layerName)
	}
	lib, err := perfprune.LookupBackend(libName)
	if err != nil {
		return err
	}
	dev, err := device.ByName(devName)
	if err != nil {
		return err
	}
	tg := perfprune.Target{Device: dev, Library: lib}
	var curve []perfprune.Point
	var a perfprune.Analysis
	var probed *perfprune.ProbeStats
	if probeMode {
		res, err := perfprune.ProbeStaircase(tg, layer.Spec, lo, layer.Spec.OutC)
		if err != nil {
			return err
		}
		curve, a, probed = res.Curve, res.Analysis, &res.Stats
	} else {
		curve, err = perfprune.Sweep(tg, layer.Spec, lo, layer.Spec.OutC)
		if err != nil {
			return err
		}
	}
	c := report.Curve{
		Title:  fmt.Sprintf("%s under %s on %s", layerName, lib.Name(), dev.Name),
		XLabel: "number of channels",
		YLabel: "inference time (ms)",
		Points: curve,
	}
	if csv {
		fmt.Print(c.RenderCSV())
		// The audit goes to stderr so the CSV stream stays clean.
		printProbeAudit(os.Stderr, probed)
		return nil
	}
	fmt.Print(c.RenderASCII(72, 18))

	if !probeMode {
		// Probe mode already carries its analysis; a plain sweep
		// analyzes here, after the plot paths that don't need it.
		if a, err = staircase.Analyze(curve); err != nil {
			return err
		}
	}
	fmt.Printf("\n%d stairs detected, largest step %.2fx\n", len(a.Stairs), a.MaxStep())
	fmt.Println("optimal (right-edge) channel counts for performance-aware pruning:")
	for _, e := range a.Edges {
		fmt.Printf("  %4d channels  %8.3f ms\n", e.Channels, e.Ms)
	}
	printProbeAudit(os.Stdout, probed)
	return nil
}

// printProbeAudit reports what probing spent (or that it fell back);
// a nil audit (sweep mode) prints nothing.
func printProbeAudit(w io.Writer, probed *perfprune.ProbeStats) {
	switch {
	case probed == nil:
	case probed.FellBack:
		fmt.Fprintf(w, "probe: non-monotone curve detected at %d channels; fell back to the full %d-point sweep\n",
			probed.ViolationAt, probed.GridPoints)
	default:
		fmt.Fprintf(w, "probe: %d of %d grid points measured (%.1f%% avoided)\n",
			probed.Probes, probed.GridPoints,
			100*float64(probed.Avoided())/float64(probed.GridPoints))
	}
}
