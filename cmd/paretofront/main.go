// Command paretofront computes the cross-layer latency–accuracy Pareto
// frontier of a network on one target — every non-dominated trade
// between inference time and modeled accuracy over the staircase right
// edges — and answers deployment queries against it: best accuracy
// under a deadline (-budget-ms), fastest plan within an accuracy drop
// cap (-maxdrop). With -fleet it instead plans one shared configuration
// across several targets, minimizing worst-case or weighted latency.
//
// Usage:
//
//	paretofront -net VGG-16 -backend acl-gemm -device "HiKey 970" -points 20
//	paretofront -net VGG-16 -backend acl-gemm -device "HiKey 970" -budget-ms 1800 -plan
//	paretofront -net mobilenet-v1 -backend acl-gemm -device "HiKey 970" -maxdrop 2 -plan
//	paretofront -net VGG-16 -maxdrop 2 \
//	    -fleet "acl-gemm=HiKey 970,acl-gemm=Odroid XU4,cudnn=Jetson TX2,cudnn=Jetson Nano"
//
// Network names are case-insensitive. Grouped networks (MobileNet-V1's
// depthwise-producer pairs, ResNet-50's residual stages) are planned
// under their coupling constraints: every plan keeps one channel count
// per group.
//
// Fleet members are comma-separated backend=device pairs, with an
// optional =weight third field for the weighted_sum objective.
//
// With -probe, per-layer profiling uses the adaptive staircase prober
// (bisected stair edges, verified fallback on non-monotone curves)
// instead of exhaustive sweeps; the frontier and plans are identical,
// the measurement bill is not.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"perfprune"
	"perfprune/internal/core"
	"perfprune/internal/device"
	"perfprune/internal/nets"
	"perfprune/internal/prune"
	"perfprune/internal/report"
)

func main() {
	netName := flag.String("net", "VGG-16", "network: ResNet-50, VGG-16, AlexNet or MobileNet-V1")
	libName := flag.String("backend", "acl-gemm",
		"backend: "+strings.Join(perfprune.BackendNames(), ", "))
	devName := flag.String("device", "HiKey 970", "target board")
	budgetMs := flag.Float64("budget-ms", 0, "latency deadline to query the frontier with (0 = off)")
	maxDrop := flag.Float64("maxdrop", 2.0, "accuracy-drop budget (points) for the fastest-plan query and fleet planning")
	points := flag.Int("points", 20, "frontier points to print (evenly sampled, endpoints kept)")
	format := flag.String("format", "text", "table format: text, markdown or csv")
	fleet := flag.String("fleet", "", `fleet members as "backend=device[=weight],..." (enables fleet mode)`)
	objective := flag.String("objective", "worst_case", "fleet objective: worst_case or weighted_sum")
	showPlan := flag.Bool("plan", false, "print the selected plan's per-layer channels")
	probeMode := flag.Bool("probe", false,
		"profile layers with the adaptive staircase prober instead of exhaustive sweeps")
	flag.Parse()

	if err := run(*netName, *libName, *devName, *budgetMs, *maxDrop, *points, *format, *fleet, *objective, *showPlan, *probeMode); err != nil {
		fmt.Fprintf(os.Stderr, "paretofront: %v\n", err)
		os.Exit(1)
	}
}

func run(netName, libName, devName string, budgetMs, maxDrop float64,
	points int, format, fleetSpec, objective string, showPlan, probeMode bool) error {
	n, err := nets.ByName(netName)
	if err != nil {
		return err
	}
	render, err := renderer(format)
	if err != nil {
		return err
	}
	if fleetSpec != "" {
		return runFleet(n, fleetSpec, objective, maxDrop, render, showPlan, probeMode)
	}

	lib, err := perfprune.LookupBackend(libName)
	if err != nil {
		return err
	}
	dev, err := device.ByName(devName)
	if err != nil {
		return err
	}
	tg := core.Target{Device: dev, Library: lib}
	fmt.Printf("profiling %s on %s ...\n", n.Name, tg)
	np, err := profileOne(perfprune.NewEngine(), tg, n, probeMode)
	if err != nil {
		return err
	}
	pl, err := perfprune.NewPlanner(np)
	if err != nil {
		return err
	}
	f, err := perfprune.ComputeFrontier(pl)
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Print(render(f.Table(points)))
	fmt.Println()
	if budgetMs > 0 {
		if p, ok := f.LatencyBudget(budgetMs); ok {
			fmt.Printf("best under %.1f ms:   %10.3f ms (%.2fx), top-1 %.2f%% (-%.3f)\n",
				budgetMs, p.LatencyMs, p.Speedup, p.Accuracy, p.AccuracyDrop)
			printPlan(n, p.Plan, showPlan)
		} else {
			fmt.Printf("no frontier plan meets the %.1f ms deadline (fastest: %.3f ms)\n",
				budgetMs, f.Points[0].LatencyMs)
		}
	}
	if p, ok := f.AccuracyBudget(maxDrop); ok {
		fmt.Printf("fastest within -%.1f pts: %8.3f ms (%.2fx), top-1 %.2f%% (-%.3f)\n",
			maxDrop, p.LatencyMs, p.Speedup, p.Accuracy, p.AccuracyDrop)
		printPlan(n, p.Plan, showPlan)
	}
	return nil
}

func runFleet(n nets.Network, fleetSpec, objective string, maxDrop float64,
	render func(report.Table) string, showPlan, probeMode bool) error {
	obj, err := perfprune.FleetObjectiveByName(objective)
	if err != nil {
		return err
	}
	members, err := parseFleet(fleetSpec)
	if err != nil {
		return err
	}
	eng := perfprune.NewEngine()
	fleet := make([]perfprune.FleetTarget, len(members))
	for i, mb := range members {
		lib, err := perfprune.LookupBackend(mb.backend)
		if err != nil {
			return err
		}
		dev, err := device.ByName(mb.device)
		if err != nil {
			return err
		}
		tg := core.Target{Device: dev, Library: lib}
		fmt.Printf("profiling %s on %s ...\n", n.Name, tg)
		np, err := profileOne(eng, tg, n, probeMode)
		if err != nil {
			return err
		}
		fleet[i] = perfprune.FleetTarget{Profile: np, Weight: mb.weight}
	}
	fp, err := perfprune.PlanFleet(fleet, maxDrop, obj)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(render(fp.Table()))
	printPlan(n, fp.Plan, showPlan)
	return nil
}

// profileOne profiles a network on one target, adaptively when probe
// mode is on (printing the measurement audit) and exhaustively
// otherwise. Both paths share the engine's measurement cache and yield
// identical profiles.
func profileOne(eng *perfprune.Engine, tg core.Target, n nets.Network, probeMode bool) (*core.NetworkProfile, error) {
	if !probeMode {
		return perfprune.ProfileNetworkContext(context.Background(), eng, tg, n)
	}
	np, usage, err := perfprune.ProfileNetworkProbe(context.Background(), eng, tg, n)
	if err != nil {
		return nil, err
	}
	fmt.Printf("  probe: %d of %d measurements (%d avoided, %d of %d shapes fell back)\n",
		usage.Probes, usage.GridPoints, usage.Avoided(), usage.Fallbacks, usage.Shapes)
	return np, nil
}

type fleetMember struct {
	backend, device string
	weight          float64
}

func parseFleet(spec string) ([]fleetMember, error) {
	var out []fleetMember
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, "=")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("fleet member %q is not backend=device[=weight]", part)
		}
		m := fleetMember{backend: strings.TrimSpace(fields[0]), device: strings.TrimSpace(fields[1])}
		if len(fields) == 3 {
			w, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("fleet member %q has invalid weight", part)
			}
			m.weight = w
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty fleet spec")
	}
	return out, nil
}

func renderer(format string) (func(report.Table) string, error) {
	switch format {
	case "text":
		return report.Table.Render, nil
	case "markdown":
		return report.Table.RenderMarkdown, nil
	case "csv":
		return report.Table.RenderCSV, nil
	}
	return nil, fmt.Errorf("unknown format %q (have: text, markdown, csv)", format)
}

func printPlan(n nets.Network, p prune.Plan, show bool) {
	if !show {
		return
	}
	labels := make([]string, 0, len(p))
	for label := range p {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	fmt.Println("  per-layer plan (pruned layers only):")
	for _, label := range labels {
		l, ok := n.Layer(label)
		if !ok || p[label] == l.Spec.OutC {
			continue
		}
		fmt.Printf("    %-14s %4d -> %4d channels\n", label, l.Spec.OutC, p[label])
	}
}
