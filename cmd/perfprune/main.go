// Command perfprune regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	perfprune list             list all experiments with their paper claims
//	perfprune backends         list all registered compute backends
//	perfprune all              run every experiment in paper order
//	perfprune <id> [<id>...]   run specific experiments (fig1..fig20,
//	                           table1..table5, plan)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perfprune"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		list()
	case "backends":
		backends()
	case "all":
		runAll()
	default:
		for _, id := range args {
			run(id)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `perfprune - regenerate the IISWC 2019 channel-pruning paper's artifacts

usage:
  perfprune list             list all experiments
  perfprune backends         list all registered compute backends
  perfprune all              run every experiment
  perfprune <id> [<id>...]   run specific experiments

ids: fig1..fig20, table1..table5, plan
`)
}

func backends() {
	for _, key := range perfprune.BackendNames() {
		b, err := perfprune.LookupBackend(key)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfprune: %v\n", err)
			os.Exit(1)
		}
		targets := make([]string, 0, 4)
		for _, d := range perfprune.Devices() {
			if b.Supports(d) {
				targets = append(targets, d.Name)
			}
		}
		fmt.Printf("%-18s %-18s targets: %s\n", key, b.Name(), strings.Join(targets, ", "))
	}
}

func list() {
	for _, e := range perfprune.Experiments() {
		fmt.Printf("%-8s %s\n", e.ID, e.Title)
		fmt.Printf("         paper: %s\n", e.Paper)
	}
}

func runAll() {
	for _, e := range perfprune.Experiments() {
		run(e.ID)
	}
}

func run(id string) {
	out, err := perfprune.RunExperiment(id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfprune: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("=== %s ===\n%s\n", id, out)
}
