package perfprune

// Golden-file regression tests: the exact rendered output of the
// paper's tables and the Fig. 18 counter comparison is pinned under
// testdata/. Any drift in the calibrated instruction models, the
// runtime's split decision, the simulator's counters or the renderers
// shows up as a byte-level diff here. Regenerate a golden after an
// intentional change by writing RunExperiment's output verbatim to
// testdata/<id>.golden.
import (
	"os"
	"path/filepath"
	"testing"

	"perfprune/internal/device"
	"perfprune/internal/nets"
	"perfprune/internal/profiler"
	"perfprune/internal/report"
)

// TestConcurrentSweepGolden pins the concurrency contract end to end:
// the rendered artifact built from the concurrent cached engine must be
// byte-identical to the one built from the serial reference path.
func TestConcurrentSweepGolden(t *testing.T) {
	l16 := mustLayer(nets.ResNet50(), "ResNet.L16").Spec
	render := func(pts []profiler.Point) string {
		c := report.Curve{
			Title:  "ResNet-50 L16 under ACL GEMM on HiKey 970",
			XLabel: "number of channels",
			YLabel: "inference time (ms)",
			Points: pts,
		}
		return c.RenderASCII(72, 16) + c.RenderCSV()
	}
	serial, err := profiler.SweepChannels(ACLGEMM(), device.HiKey970, l16, 20, 128)
	if err != nil {
		t.Fatal(err)
	}
	concurrent, err := profiler.NewEngine().SweepChannels(ACLGEMM(), device.HiKey970, l16, 20, 128)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := render(concurrent), render(serial); got != want {
		t.Errorf("concurrent sweep artifact diverged from serial.\n--- concurrent ---\n%s\n--- serial ---\n%s", got, want)
	}
}

func TestGoldenOutputs(t *testing.T) {
	ids := []string{"table1", "table2", "table3", "table4", "table5", "fig18"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			got, err := RunExperiment(id)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", id, got, want)
			}
		})
	}
}
