package perfprune

// Golden-file regression tests: the exact rendered output of the
// paper's tables and the Fig. 18 counter comparison is pinned under
// testdata/. Any drift in the calibrated instruction models, the
// runtime's split decision, the simulator's counters or the renderers
// shows up as a byte-level diff here. Regenerate a golden after an
// intentional change by writing RunExperiment's output verbatim to
// testdata/<id>.golden.
import (
	"os"
	"path/filepath"
	"testing"
)

func TestGoldenOutputs(t *testing.T) {
	ids := []string{"table1", "table2", "table3", "table4", "table5", "fig18"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			got, err := RunExperiment(id)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("%s output drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", id, got, want)
			}
		})
	}
}
