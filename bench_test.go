package perfprune

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each bench regenerates its artifact end to
// end (sweeps + analysis + rendering) and reports the artifact's
// headline number as a custom metric, so `go test -bench=.` both
// exercises the full pipeline and prints the paper-vs-measured numbers
// EXPERIMENTS.md records. Benchmarks of the real compute substrate
// (direct vs im2col convolution, GEMM variants) live in their packages.

import (
	"testing"
	"time"

	"perfprune/internal/acl"
	"perfprune/internal/core"
	"perfprune/internal/device"
	"perfprune/internal/nets"
	"perfprune/internal/probe"
	"perfprune/internal/profiler"
	"perfprune/internal/staircase"
)

func benchHeatmap(b *testing.B, n nets.Network, lib profiler.Library, dev device.Device,
	distances []int, slowdown bool, metric string) {
	b.Helper()
	var headline float64
	for i := 0; i < b.N; i++ {
		h, err := heatmapFor(n, lib, dev, distances, slowdown, "bench")
		if err != nil {
			b.Fatal(err)
		}
		headline = h.MaxCell()
	}
	b.ReportMetric(headline, metric)
}

func benchCurve(b *testing.B, lib profiler.Library, dev device.Device, label string, lo, hi int) []profiler.Point {
	b.Helper()
	layer := mustLayer(nets.ResNet50(), label).Spec
	var pts []profiler.Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = profiler.SweepChannels(lib, dev, layer, lo, hi)
		if err != nil {
			b.Fatal(err)
		}
	}
	return pts
}

// BenchmarkFig01 regenerates the max-slowdown heatmap (ACL GEMM,
// HiKey 970). Paper headline: slowdowns up to ~1.9x.
func BenchmarkFig01(b *testing.B) {
	benchHeatmap(b, nets.ResNet50(), ACLGEMM(), device.HiKey970, fig1Distances, true, "max_slowdown_x")
}

// BenchmarkFig02 regenerates the cuDNN staircase for the 1024-channel
// L26. Paper: 1-8 ms staircase.
func BenchmarkFig02(b *testing.B) {
	pts := benchCurve(b, CuDNN(), device.JetsonTX2, "ResNet.L26", 1, 1024)
	b.ReportMetric(pts[len(pts)-1].Ms, "t_full_ms")
}

// BenchmarkFig03 regenerates the ACL double staircase for L16 (Fig. 3).
func BenchmarkFig03(b *testing.B) {
	pts := benchCurve(b, ACLGEMM(), device.HiKey970, "ResNet.L16", 20, 128)
	a, err := staircase.Analyze(pts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(a.MaxStep(), "max_step_x")
}

// BenchmarkFig04 regenerates the cuDNN L16 staircase. Paper: 1.3x step
// at the 96-channel edge.
func BenchmarkFig04(b *testing.B) {
	pts := benchCurve(b, CuDNN(), device.JetsonTX2, "ResNet.L16", 20, 128)
	b.ReportMetric(at(pts, 128)/at(pts, 96), "step96_x")
}

// BenchmarkFig05 regenerates the cuDNN L14 staircase (uneven gaps).
func BenchmarkFig05(b *testing.B) {
	pts := benchCurve(b, CuDNN(), device.JetsonTX2, "ResNet.L14", 1, 512)
	b.ReportMetric(at(pts, 512), "t_full_ms")
}

// BenchmarkFig06 regenerates the cuDNN ResNet-50 heatmap. Paper: 3.3x.
func BenchmarkFig06(b *testing.B) {
	benchHeatmap(b, nets.ResNet50(), CuDNN(), device.JetsonTX2, fullDistances, false, "max_speedup_x")
}

// BenchmarkFig07 regenerates the Jetson Nano L14 staircase. Paper: the
// TX2 shape scaled ~3.5x.
func BenchmarkFig07(b *testing.B) {
	pts := benchCurve(b, CuDNN(), device.JetsonNano, "ResNet.L14", 1, 512)
	b.ReportMetric(at(pts, 512), "t_full_ms")
}

// BenchmarkFig08 regenerates the VGG-16 cuDNN heatmap. Paper: 2.8x.
func BenchmarkFig08(b *testing.B) {
	benchHeatmap(b, nets.VGG16(), CuDNN(), device.JetsonTX2, fullDistances, false, "max_speedup_x")
}

// BenchmarkFig09 regenerates the AlexNet cuDNN heatmap. Paper: 1.4x.
func BenchmarkFig09(b *testing.B) {
	benchHeatmap(b, nets.AlexNet(), CuDNN(), device.JetsonTX2, fullDistances, false, "max_speedup_x")
}

// BenchmarkFig10 regenerates the ACL Direct ResNet-50 heatmap. Paper:
// 0.2x prune-by-one cells, 16.9x max.
func BenchmarkFig10(b *testing.B) {
	benchHeatmap(b, nets.ResNet50(), ACLDirect(), device.HiKey970, fullDistances, false, "max_speedup_x")
}

// BenchmarkFig11 regenerates the ACL Direct VGG-16 heatmap. Paper: 14.7x.
func BenchmarkFig11(b *testing.B) {
	benchHeatmap(b, nets.VGG16(), ACLDirect(), device.HiKey970, fullDistances, false, "max_speedup_x")
}

// BenchmarkFig12 regenerates the three-level direct pattern on L14.
// Paper: levels up to 1.9x apart.
func BenchmarkFig12(b *testing.B) {
	pts := benchCurve(b, ACLDirect(), device.HiKey970, "ResNet.L14", 1, 512)
	b.ReportMetric(at(pts, 511)/at(pts, 512), "level_spread_x")
}

// BenchmarkFig13 regenerates the ACL GEMM ResNet-50 heatmap. Paper: 5.2x.
func BenchmarkFig13(b *testing.B) {
	benchHeatmap(b, nets.ResNet50(), ACLGEMM(), device.HiKey970, fullDistances, false, "max_speedup_x")
}

// BenchmarkFig14 regenerates the L16 double-staircase detail. Paper:
// t(92)/t(93) jump of 23/14 = 1.64x.
func BenchmarkFig14(b *testing.B) {
	pts := benchCurve(b, ACLGEMM(), device.HiKey970, "ResNet.L16", 20, 128)
	b.ReportMetric(at(pts, 92)/at(pts, 93), "jump92_x")
	b.ReportMetric(at(pts, 76)/at(pts, 78), "gap76_78_x")
}

// BenchmarkFig15 regenerates the L45 pointwise gap. Paper: 2.57x
// between 2036 and 2024 channels.
func BenchmarkFig15(b *testing.B) {
	pts := benchCurve(b, ACLGEMM(), device.HiKey970, "ResNet.L45", 1, 2048)
	b.ReportMetric(at(pts, 2036)/at(pts, 2024), "gap_x")
}

// BenchmarkFig16 regenerates the VGG-16 ACL GEMM heatmap. Paper: 4.2x.
func BenchmarkFig16(b *testing.B) {
	benchHeatmap(b, nets.VGG16(), ACLGEMM(), device.HiKey970, fullDistances, false, "max_speedup_x")
}

// BenchmarkFig17 regenerates the AlexNet ACL GEMM heatmap. Paper: 2.5x.
func BenchmarkFig17(b *testing.B) {
	benchHeatmap(b, nets.AlexNet(), ACLGEMM(), device.HiKey970, fullDistances, false, "max_speedup_x")
}

// BenchmarkFig18 regenerates the system-counter comparison. Metric: the
// relative job count of the 92-channel run (paper: extra jobs).
func BenchmarkFig18(b *testing.B) {
	l16 := mustLayer(nets.ResNet50(), "ResNet.L16").Spec
	var rel float64
	for i := 0; i < b.N; i++ {
		p92, err := acl.Run(device.HiKey970, l16.WithOutC(92), acl.GEMMConv)
		if err != nil {
			b.Fatal(err)
		}
		p93, err := acl.Run(device.HiKey970, l16.WithOutC(93), acl.GEMMConv)
		if err != nil {
			b.Fatal(err)
		}
		rel = float64(p92.Result.SteadyCounters().Jobs) / float64(p93.Result.SteadyCounters().Jobs)
	}
	b.ReportMetric(rel, "jobs92_rel")
}

// BenchmarkFig19 regenerates the TVM heatmap. Paper: 0.0x-13.9x spread.
func BenchmarkFig19(b *testing.B) {
	benchHeatmap(b, nets.ResNet50(), TVM(), device.HiKey970, fig19Distances, false, "max_speedup_x")
}

// BenchmarkFig20 regenerates the TVM spike curve on L14.
func BenchmarkFig20(b *testing.B) {
	pts := benchCurve(b, TVM(), device.HiKey970, "ResNet.L14", 1, 512)
	lo, hi := pts[len(pts)/2].Ms, pts[len(pts)/2].Ms
	for _, p := range pts[len(pts)/2:] {
		if p.Ms < lo {
			lo = p.Ms
		}
		if p.Ms > hi {
			hi = p.Ms
		}
	}
	b.ReportMetric(hi/lo, "spike_spread_x")
}

// BenchmarkTable1 regenerates Tables I-IV (the per-kernel instruction
// counts at 92/93/96/97 channels) and reports Table II's gemm_mm count.
func BenchmarkTable1(b *testing.B) {
	l16 := mustLayer(nets.ResNet50(), "ResNet.L16").Spec
	var gemm93 int64
	for i := 0; i < b.N; i++ {
		for _, c := range []int{92, 93, 96, 97} {
			rows, err := acl.KernelTable(device.HiKey970, l16.WithOutC(c), acl.GEMMConv)
			if err != nil {
				b.Fatal(err)
			}
			if c == 93 {
				gemm93 = rows[2].ArithInstrs
			}
		}
	}
	b.ReportMetric(float64(gemm93), "gemm93_instrs")
}

// BenchmarkTable5 regenerates the direct-convolution work-group table.
// Metric: the odd/even runtime ratio (paper: ~1.2x).
func BenchmarkTable5(b *testing.B) {
	l16 := mustLayer(nets.ResNet50(), "ResNet.L16").Spec
	var ratio float64
	for i := 0; i < b.N; i++ {
		p92, err := acl.Run(device.HiKey970, l16.WithOutC(92), acl.DirectConv)
		if err != nil {
			b.Fatal(err)
		}
		p93, err := acl.Run(device.HiKey970, l16.WithOutC(93), acl.DirectConv)
		if err != nil {
			b.Fatal(err)
		}
		ratio = p93.Ms / p92.Ms
	}
	b.ReportMetric(ratio, "odd_even_x")
}

// BenchmarkPerfAwarePlan runs the §V performance-aware planning loop on
// full ResNet-50 against the ACL GEMM target and reports the achieved
// speedup at a 1.5x target.
func BenchmarkPerfAwarePlan(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		tg := core.Target{Device: device.HiKey970, Library: ACLGEMM()}
		np, err := core.ProfileNetwork(tg, nets.ResNet50())
		if err != nil {
			b.Fatal(err)
		}
		pl, err := core.NewPlanner(np)
		if err != nil {
			b.Fatal(err)
		}
		res, err := pl.PerformanceAware(1.5, 2.0)
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.Speedup
	}
	b.ReportMetric(speedup, "speedup_x")
}

// The sweep-pipeline benchmarks walk the last 64 output-channel counts
// of every unique VGG-16 layer on the ACL GEMM / HiKey 970 target —
// the multi-layer grid every heatmap figure walks.

// trunkLo returns the sweep floor for a layer's last-64-channels range.
func trunkLo(l nets.Layer) int {
	lo := l.Spec.OutC - 63
	if lo < 1 {
		lo = 1
	}
	return lo
}

// serialTrunkSweep is the serial reference pipeline over the trunk.
func serialTrunkSweep(layers []nets.Layer) error {
	for _, l := range layers {
		if _, err := profiler.SweepChannels(ACLGEMM(), device.HiKey970, l.Spec, trunkLo(l), l.Spec.OutC); err != nil {
			return err
		}
	}
	return nil
}

// concurrentTrunkSweep runs the same grid through an engine.
func concurrentTrunkSweep(eng *profiler.Engine, layers []nets.Layer) error {
	for _, l := range layers {
		if _, err := eng.SweepChannels(ACLGEMM(), device.HiKey970, l.Spec, trunkLo(l), l.Spec.OutC); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkSweepSerial is the serial reference pipeline: one
// configuration at a time, no memoization.
func BenchmarkSweepSerial(b *testing.B) {
	layers := nets.VGG16().UniqueLayers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := serialTrunkSweep(layers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepConcurrentCached runs the grid through the concurrent
// cached engine twice — the profile-then-replan shape of the planning
// workflows — so the reported cache hit rate measures real
// deduplication (the second pass re-executes nothing).
func BenchmarkSweepConcurrentCached(b *testing.B) {
	layers := nets.VGG16().UniqueLayers()
	var hitRate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := profiler.NewEngine()
		for pass := 0; pass < 2; pass++ {
			if err := concurrentTrunkSweep(eng, layers); err != nil {
				b.Fatal(err)
			}
		}
		hitRate = eng.Cache().Stats().HitRate()
	}
	b.ReportMetric(hitRate, "cache_hit_rate")
}

// BenchmarkSweepSpeedup times both pipelines on one pass over the
// VGG-16 trunk and reports concurrent-over-serial speedup — the
// refactor's headline number (acceptance: >= 2x).
func BenchmarkSweepSpeedup(b *testing.B) {
	layers := nets.VGG16().UniqueLayers()
	var speedup float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if err := serialTrunkSweep(layers); err != nil {
			b.Fatal(err)
		}
		serialDur := time.Since(start)

		start = time.Now()
		if err := concurrentTrunkSweep(profiler.NewEngine(), layers); err != nil {
			b.Fatal(err)
		}
		concurrentDur := time.Since(start)
		speedup = float64(serialDur) / float64(concurrentDur)
	}
	b.ReportMetric(speedup, "speedup_x")
}

// BenchmarkFrontierDP times the cross-layer Pareto frontier planner on
// VGG-16 × (ACL GEMM, HiKey 970). The profile is built once outside the
// loop (warm cache), so the measurement isolates the DP + exact
// re-scoring itself — the planner hot path a /v1/frontier request pays
// after its sweeps coalesce. Metric: the frontier's point count.
func BenchmarkFrontierDP(b *testing.B) {
	tg := core.Target{Device: device.HiKey970, Library: ACLGEMM()}
	np, err := core.ProfileNetwork(tg, nets.VGG16())
	if err != nil {
		b.Fatal(err)
	}
	pl, err := core.NewPlanner(np)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var points int
	for i := 0; i < b.N; i++ {
		f, err := ComputeFrontier(pl)
		if err != nil {
			b.Fatal(err)
		}
		points = len(f.Points)
	}
	b.ReportMetric(float64(points), "frontier_points")
}

// BenchmarkFrontierFleet times the four-board fleet planner on VGG-16
// with warm profiles: the worst-case objective's bottleneck enumeration
// plus reweighting solves. Metric: the shared plan's worst-case
// latency.
func BenchmarkFrontierFleet(b *testing.B) {
	targets := []Target{
		{Device: device.HiKey970, Library: ACLGEMM()},
		{Device: device.OdroidXU4, Library: ACLGEMM()},
		{Device: device.JetsonTX2, Library: CuDNN()},
		{Device: device.JetsonNano, Library: CuDNN()},
	}
	fleet := make([]FleetTarget, len(targets))
	for i, tg := range targets {
		np, err := core.ProfileNetwork(tg, nets.VGG16())
		if err != nil {
			b.Fatal(err)
		}
		fleet[i] = FleetTarget{Profile: np}
	}
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		fp, err := PlanFleet(fleet, 2.0, WorstCase)
		if err != nil {
			b.Fatal(err)
		}
		worst = fp.WorstCaseMs
	}
	b.ReportMetric(worst, "worst_case_ms")
}

// BenchmarkProbeVsSweep compares adaptive staircase probing against
// the exhaustive sweep on every unique VGG-16 layer, per simulated
// backend. Both paths run on cold caches each iteration so the
// wall-clock ratio reflects the measurement bill, and the probe audit
// reports the measurement counts directly: probes_pct is the fraction
// of the sweep grid the prober actually measured (small on cuDNN's
// monotone staircases; 100 on the non-monotone ACL/TVM families,
// whose verified fallback re-measures the grid).
func BenchmarkProbeVsSweep(b *testing.B) {
	n := nets.VGG16()
	for _, lib := range Libraries() {
		lib := lib
		var dev device.Device
		for _, d := range device.All() {
			if lib.Supports(d) {
				dev = d
				break
			}
		}
		b.Run(lib.Name(), func(b *testing.B) {
			var probes, grid int
			var probeDur, sweepDur time.Duration
			for i := 0; i < b.N; i++ {
				probes, grid = 0, 0
				probeEng := profiler.NewEngine()
				start := time.Now()
				for _, l := range n.UniqueLayers() {
					res, err := probeEng.ProbeStaircase(lib, dev, l.Spec, 1, l.Spec.OutC, probe.Options{})
					if err != nil {
						b.Fatal(err)
					}
					probes += res.Stats.Probes
					grid += res.Stats.GridPoints
				}
				probeDur = time.Since(start)

				sweepEng := profiler.NewEngine()
				start = time.Now()
				for _, l := range n.UniqueLayers() {
					if _, err := sweepEng.SweepChannels(lib, dev, l.Spec, 1, l.Spec.OutC); err != nil {
						b.Fatal(err)
					}
				}
				sweepDur = time.Since(start)
			}
			b.ReportMetric(100*float64(probes)/float64(grid), "probes_pct")
			b.ReportMetric(float64(grid-probes), "points_avoided")
			b.ReportMetric(float64(sweepDur)/float64(probeDur), "speedup_x")
		})
	}
}

// BenchmarkUninstructedBaseline measures the accuracy-only baseline the
// paper warns about: uniform 12% pruning on the ACL direct path.
// Metric below 1.0 is the headline hazard.
func BenchmarkUninstructedBaseline(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		tg := core.Target{Device: device.HiKey970, Library: ACLDirect()}
		np, err := core.ProfileNetwork(tg, nets.ResNet50())
		if err != nil {
			b.Fatal(err)
		}
		pl, err := core.NewPlanner(np)
		if err != nil {
			b.Fatal(err)
		}
		res, err := pl.Uninstructed(0.12)
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.Speedup
	}
	b.ReportMetric(speedup, "speedup_x")
}
