package perfprune

// Facade over the real compute and weight-pruning substrate: examples
// and downstream users run actual convolutions (the same math the
// simulated libraries model) and apply the §II-B channel-pruning
// transformation to weight tensors through these entry points.

import (
	"perfprune/internal/conv"
	"perfprune/internal/nets"
	"perfprune/internal/prune"
	"perfprune/internal/tensor"
)

// Tensor is a dense float32 tensor (see internal/tensor).
type Tensor = tensor.Tensor

// Layouts for NewTensor.
const (
	NHWC = tensor.NHWC
	OHWI = tensor.OHWI
)

// Criterion selects which channels pruning removes first.
type Criterion = prune.Criterion

// Pruning criteria (see internal/prune).
const (
	Sequential  = prune.Sequential
	L1Magnitude = prune.L1Magnitude
	L2Magnitude = prune.L2Magnitude
)

// NewTensor allocates a zero tensor.
func NewTensor(layout tensor.Layout, shape ...int) *Tensor {
	return tensor.New(layout, shape...)
}

// BuildWeights constructs deterministic synthetic filter banks for a
// network (stand-ins for trained weights; see DESIGN.md §2).
func BuildWeights(n Network) map[string]*Tensor { return nets.BuildWeights(n) }

// ConvDirect computes a convolution with the direct method (§II-A1):
// in is NHWC [1,H,W,C], weights OHWI [OutC,KH,KW,InC].
func ConvDirect(spec ConvSpec, in, weights *Tensor) (*Tensor, error) {
	return conv.Direct(spec, in, weights)
}

// ConvGEMM computes the same convolution via im2col + matrix multiply,
// the GEMM method of §II-A1.
func ConvGEMM(spec ConvSpec, in, weights *Tensor) (*Tensor, error) {
	return conv.GEMM(spec, in, weights)
}

// ConvWinograd computes a stride-1 3x3 convolution with the Winograd
// F(2x2,3x3) algorithm — the third real kernel behind the backend
// registry's "real-winograd" entry and the hybrid dispatcher.
func ConvWinograd(spec ConvSpec, in, weights *Tensor) (*Tensor, error) {
	return conv.Winograd(spec, in, weights)
}

// PruneToWidth prunes a filter bank to keep output channels under the
// criterion, applying the paper's §II-B removal and re-indexing. It
// returns the compact bank and the surviving original channel indices.
func PruneToWidth(w *Tensor, keep int, crit Criterion) (*Tensor, []int, error) {
	return prune.ToWidth(w, keep, crit)
}

// UniformPlan prunes every layer by the same fraction — the
// uninstructed baseline the paper warns about.
func UniformPlan(n Network, fraction float64) (Plan, error) {
	return prune.Uniform(n, fraction)
}
